package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"directload/internal/core"
	"directload/internal/metrics"
)

// defaultMaxInFlight bounds concurrent dispatch per v2 connection when
// the operator does not configure one.
const defaultMaxInFlight = 64

// maxCoalesce caps how many response bytes the v2 writer accumulates
// before forcing a write, bounding both latency and buffer growth.
const maxCoalesce = 64 << 10

// StatsReply is the JSON payload of OpStats.
type StatsReply struct {
	Engine core.Stats `json:"engine"`
	Conns  int        `json:"conns"`
}

// Server exposes one QinDB engine on a TCP listener, one goroutine per
// connection. A v1 connection is handled strictly in order; after a v2
// hello the connection switches to pipelined mode, dispatching up to
// MaxInFlight requests concurrently while a dedicated writer goroutine
// serializes responses back onto the wire.
//
// The Server owns only the binary wire: framing, sequence numbers,
// negotiation, response encoding. Every request executes through its
// Backend, which alternate front doors (internal/resp) share.
type Server struct {
	backend *Backend

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]bool
	closed bool
	logf   func(format string, args ...any)

	// Tuning knobs, atomic so they may be adjusted while serving.
	// maxInFlight and maxProto apply to connections accepted (or, for
	// maxInFlight, upgraded to v2) after the change; the deadlines
	// apply from each connection's next frame.
	maxInFlight  atomic.Int32
	readTimeout  atomic.Int64 // nanoseconds; 0 disables
	writeTimeout atomic.Int64 // nanoseconds; 0 disables
	maxProto     atomic.Int32
	noTrace      atomic.Bool // refuse the trace feature in hellos
}

// serverMetrics holds per-opcode request counters and wall-clock latency
// histograms, indexed by opcode. All handles nil without a registry.
type serverMetrics struct {
	reqs     [opMax + 1]*metrics.Counter
	lat      [opMax + 1]*metrics.Histogram
	allocB   [opMax + 1]*metrics.Histogram // sampled alloc bytes per request
	badReqs  *metrics.Counter
	conns    *metrics.Gauge
	inflight *metrics.Gauge   // server.pipeline.inflight: requests being dispatched
	batchOps *metrics.Counter // server.batch.ops: sub-ops applied via OpBatch
}

// SetMetrics attaches a registry (exported via OpMetrics and, in qindbd,
// HTTP). Call before Serve; nil leaves the server uninstrumented.
func (s *Server) SetMetrics(reg *metrics.Registry) {
	s.backend.SetMetrics(reg)
}

// SetAttribution enables sampled per-opcode resource attribution on the
// shared backend (one request in every measured; <= 0 disables).
func (s *Server) SetAttribution(every int) {
	s.backend.SetAttribution(every)
}

// New wraps an engine. The caller keeps ownership of db and must close
// it after the server stops.
func New(db *core.DB) *Server {
	return NewWithBackend(NewBackend(db))
}

// NewWithBackend builds a native listener over an existing Backend —
// the sharing point for multi-protocol deployments: qindbd hands one
// Backend to both this server and the RESP front door, so both wires
// hit one engine with one set of metrics.
func NewWithBackend(b *Backend) *Server {
	s := &Server{
		backend: b,
		conns:   make(map[net.Conn]bool),
		logf:    log.Printf,
	}
	s.maxInFlight.Store(defaultMaxInFlight)
	s.maxProto.Store(MaxProto)
	return s
}

// Backend returns the server's execution backend, shared with any
// additional front doors.
func (s *Server) Backend() *Backend {
	return s.backend
}

// SetLogf replaces the server's logger (nil silences it).
func (s *Server) SetLogf(logf func(format string, args ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s.logf = logf
}

// SetMaxInFlight bounds concurrent dispatch per v2 connection — the
// backpressure knob: once a connection has n requests being served, the
// server stops reading from it until responses drain. Values < 1 reset
// the default. Safe at runtime; applies to connections upgraded after
// the call.
func (s *Server) SetMaxInFlight(n int) {
	if n < 1 {
		n = defaultMaxInFlight
	}
	s.maxInFlight.Store(int32(n))
}

// SetTimeouts installs per-frame read and write deadlines (zero
// disables either). The read deadline doubles as an idle timeout: a
// connection that sends nothing for `read` is torn down. Safe at
// runtime; applies from each connection's next frame.
func (s *Server) SetTimeouts(read, write time.Duration) {
	s.readTimeout.Store(int64(read))
	s.writeTimeout.Store(int64(write))
}

// SetMaxProtocol caps the protocol version the server negotiates —
// SetMaxProtocol(ProtoV1) makes it behave like a legacy in-order server
// (useful for interop testing and staged rollouts). Safe at runtime;
// applies to hellos received after the call.
func (s *Server) SetMaxProtocol(v int) {
	if v < ProtoV1 || v > MaxProto {
		v = MaxProto
	}
	s.maxProto.Store(int32(v))
}

// SetTracePropagation controls whether the server grants the trace
// feature to clients that offer it (default on). Turning it off makes
// the server negotiate like a build that predates tracing — used for
// interop tests and as an operator kill switch. Safe at runtime;
// applies to hellos received after the call.
func (s *Server) SetTracePropagation(enabled bool) {
	s.noTrace.Store(!enabled)
}

// SetSlowLog attaches a slow-op log; every dispatched request whose
// wall-clock latency reaches the log's threshold is recorded with its
// opcode, key prefix, and trace ID. Nil detaches. Safe at runtime.
func (s *Server) SetSlowLog(l *metrics.SlowLog) {
	s.backend.SetSlowLog(l)
}

// SlowLog returns the attached slow-op log (nil when none).
func (s *Server) SlowLog() *metrics.SlowLog {
	return s.backend.SlowLog()
}

// SetReadSLO attaches a read-availability SLO tracker: every dispatched
// OpGet feeds it one event — good when the get answered StatusOK, bad
// on not-found or failure. Nil detaches. Safe at runtime.
func (s *Server) SetReadSLO(slo *metrics.SLO) {
	s.backend.SetReadSLO(slo)
}

// Serve accepts connections on ln until Close. It returns nil after a
// clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("server: closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = true
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// ListenAndServe listens on addr ("host:port", port 0 for ephemeral) and
// serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting and tears down open connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	return err
}

func (s *Server) dropConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
}

// handle serves one connection, starting in v1 (in-order) mode. A
// successful OpHello hands the connection over to the pipelined v2
// loop.
func (s *Server) handle(conn net.Conn) {
	s.backend.ConnOpened()
	defer s.backend.ConnClosed()
	defer s.dropConn(conn)
	br := bufio.NewReader(conn)
	for {
		if rt := time.Duration(s.readTimeout.Load()); rt > 0 {
			conn.SetReadDeadline(time.Now().Add(rt))
		}
		frame, err := readFrame(br)
		if err != nil {
			return // EOF or teardown
		}
		req, err := decodeRequest(frame)
		var resp []byte
		switch {
		case err != nil:
			s.backend.met.badReqs.Inc()
			resp = encodeResponse(StatusFailed, []byte(err.Error()))
		case req.Op == OpHello:
			accepted, feats, featReply := s.negotiate(req)
			payload := []byte{byte(accepted)}
			if featReply {
				// Only clients that offered features expect (and
				// tolerate) the second byte; older clients reject any
				// hello reply that is not exactly one byte.
				payload = append(payload, feats)
			}
			resp = encodeResponse(StatusOK, payload)
			if err := s.writeResp(conn, resp); err != nil {
				return
			}
			if accepted >= ProtoV2 {
				s.handleV2(conn, br, feats&helloFeatTrace != 0)
				return
			}
			continue
		default:
			resp = s.dispatch(context.Background(), req, ProtoV1)
		}
		if err := s.writeResp(conn, resp); err != nil {
			return
		}
	}
}

// writeResp writes one v1 response frame under the write deadline.
func (s *Server) writeResp(conn net.Conn, resp []byte) error {
	if wt := time.Duration(s.writeTimeout.Load()); wt > 0 {
		conn.SetWriteDeadline(time.Now().Add(wt))
	}
	return writeFrame(conn, resp)
}

// negotiate picks the protocol version and feature set for a hello
// request. featReply reports whether the client offered feature bits
// (hello Value non-empty) and therefore expects the two-byte
// [version, flags] reply; clients that sent a bare hello get the
// legacy one-byte reply so pre-feature builds interop unchanged.
func (s *Server) negotiate(req request) (accepted int, feats uint8, featReply bool) {
	accepted = int(req.Version)
	if mp := int(s.maxProto.Load()); accepted > mp {
		accepted = mp
	}
	if accepted < ProtoV1 {
		accepted = ProtoV1
	}
	if len(req.Value) == 0 {
		return accepted, 0, false
	}
	offered := req.Value[0]
	if accepted >= ProtoV2 && offered&helloFeatTrace != 0 && !s.noTrace.Load() {
		feats |= helloFeatTrace
	}
	return accepted, feats, true
}

// seqResp pairs a response body with the sequence number it answers.
type seqResp struct {
	seq  uint32
	body []byte
}

// handleV2 runs the pipelined loop: the reader admits up to maxInFlight
// requests (the backpressure gate — beyond that it stops reading, which
// pushes back through TCP flow control), each dispatched on its own
// goroutine; a single writer goroutine serializes the out-of-order
// completions back onto the wire, coalescing whatever has accumulated
// into one write per syscall. When the trace feature was negotiated
// (traceOK), request frames whose seq carries seqTraceFlag are preceded
// by a trace header; the span context it names parents every span the
// handler records, and the flag is masked off before the seq is echoed.
func (s *Server) handleV2(conn net.Conn, br *bufio.Reader, traceOK bool) {
	maxInFlight := int(s.maxInFlight.Load())
	respCh := make(chan seqResp, maxInFlight)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		var werr error
		var buf []byte
		for r := range respCh {
			if werr != nil {
				continue // conn is dead; drain so workers never block
			}
			buf = appendFrameSeq(buf[:0], r.seq, r.body)
		coalesce:
			for len(buf) < maxCoalesce {
				select {
				case r, ok := <-respCh:
					if !ok {
						break coalesce
					}
					buf = appendFrameSeq(buf, r.seq, r.body)
				default:
					break coalesce
				}
			}
			if wt := time.Duration(s.writeTimeout.Load()); wt > 0 {
				conn.SetWriteDeadline(time.Now().Add(wt))
			}
			if _, werr = conn.Write(buf); werr != nil {
				conn.Close() // unblock the reader
			}
		}
	}()

	sem := make(chan struct{}, maxInFlight)
	var wg sync.WaitGroup
	for {
		if rt := time.Duration(s.readTimeout.Load()); rt > 0 {
			conn.SetReadDeadline(time.Now().Add(rt))
		}
		seq, body, err := readFrameSeq(br)
		if err != nil {
			break
		}
		var sc metrics.SpanContext
		var derr error
		if traceOK && seq&seqTraceFlag != 0 {
			seq &^= seqTraceFlag
			sc, body, derr = splitTraceHeader(body)
		}
		var req request
		if derr == nil {
			req, derr = decodeRequest(body)
		}
		sem <- struct{}{}
		s.backend.met.inflight.Add(1)
		wg.Add(1)
		go func(seq uint32, req request, sc metrics.SpanContext, derr error) {
			defer wg.Done()
			var resp []byte
			if derr != nil {
				s.backend.met.badReqs.Inc()
				resp = encodeResponse(StatusFailed, []byte(derr.Error()))
			} else {
				ctx := metrics.ContextWithSpan(context.Background(), sc)
				resp = s.dispatch(ctx, req, ProtoV2)
			}
			// Decrement before queueing the response so the gauge
			// never reads >0 after the client has seen every reply.
			s.backend.met.inflight.Add(-1)
			respCh <- seqResp{seq: seq, body: resp}
			<-sem
		}(seq, req, sc, derr)
	}
	wg.Wait()
	close(respCh)
	<-writerDone
}

// dispatch executes one request through the Backend and encodes the
// reply onto the binary wire. The Backend owns the transport-agnostic
// work — engine execution, wall-clock timing, per-opcode metrics, the
// read SLO, the slowlog and the handler span — so the native and RESP
// listeners report identically; this function owns only the v1/v2
// response encoding.
func (s *Server) dispatch(ctx context.Context, req request, proto int) []byte {
	if req.Op < OpPut || req.Op > opMax || req.Op == OpHello {
		s.backend.met.badReqs.Inc()
		return encodeResponse(StatusFailed, []byte("unknown op"))
	}
	b := s.backend
	switch req.Op {
	case OpPing:
		if err := b.Ping(ctx); err != nil {
			return errResponse(err)
		}
		return encodeResponse(StatusOK, []byte("pong"))
	case OpPut, OpPutDedup:
		return statusOnly(b.Put(ctx, req.Key, req.Version, req.Value, req.Op == OpPutDedup))
	case OpGet:
		val, err := b.Get(ctx, req.Key, req.Version)
		if err != nil {
			return errResponse(err)
		}
		return encodeResponse(StatusOK, val)
	case OpDel:
		return statusOnly(b.Del(ctx, req.Key, req.Version))
	case OpDropVersion:
		return statusOnly(b.DropVersion(ctx, req.Version))
	case OpHas:
		ok, err := b.Has(ctx, req.Key, req.Version)
		if err != nil {
			return errResponse(err)
		}
		if ok {
			return encodeResponse(StatusOK, []byte{1})
		}
		return encodeResponse(StatusOK, []byte{0})
	case OpStats:
		reply, err := b.Stats(ctx)
		if err != nil {
			return errResponse(err)
		}
		payload, err := json.Marshal(reply)
		if err != nil {
			return errResponse(err)
		}
		return encodeResponse(StatusOK, payload)
	case OpRange:
		// Key = from, Value = exclusive upper bound, Version = limit;
		// limit <= 0 selects the backend default, positive limits clamp
		// to it.
		entries, applied, err := b.Range(ctx, req.Key, req.Value, int(int64(req.Version)))
		if err != nil {
			return errResponse(err)
		}
		if proto >= ProtoV2 {
			return encodeResponse(StatusOK, encodeRangeReply(applied, entries))
		}
		return encodeResponse(StatusOK, encodeRangeEntries(entries))
	case OpBatch:
		return s.dispatchBatch(ctx, req)
	case OpMetrics:
		payload, err := b.MetricsJSON(ctx)
		if err != nil {
			return errResponse(err)
		}
		return encodeResponse(StatusOK, payload)
	}
	return encodeResponse(StatusFailed, []byte("unknown op"))
}

// dispatchBatch decodes one OpBatch frame and applies it through the
// Backend with native semantics: sub-op failures are reported
// individually; the frame itself succeeds unless it is malformed.
func (s *Server) dispatchBatch(ctx context.Context, req request) []byte {
	subs, err := decodeBatch(req.Value, int(req.Version))
	if err != nil {
		s.backend.met.badReqs.Inc()
		return encodeResponse(StatusFailed, []byte(err.Error()))
	}
	ops := make([]BatchOp, len(subs))
	for i, sub := range subs {
		ops[i] = BatchOp{Op: sub.Op, Version: sub.Version, Key: sub.Key, Value: sub.Value}
	}
	results := s.backend.Batch(ctx, ops)
	statuses := make([]subStatus, len(results))
	for i, r := range results {
		statuses[i] = subStatusOf(r.Err)
	}
	return encodeResponse(StatusOK, encodeBatchReply(statuses))
}

// subStatusOf maps a sub-op error onto its wire status.
func subStatusOf(err error) subStatus {
	if err == nil {
		return subStatus{status: StatusOK}
	}
	return subStatus{status: statusCode(err), msg: []byte(err.Error())}
}

// statusCode maps an engine error onto a wire status byte.
func statusCode(err error) uint8 {
	switch {
	case errors.Is(err, core.ErrNotFound):
		return StatusNotFound
	case errors.Is(err, core.ErrDeleted):
		return StatusDeleted
	default:
		return StatusFailed
	}
}

func statusOnly(err error) []byte {
	if err != nil {
		return errResponse(err)
	}
	return encodeResponse(StatusOK, nil)
}

func errResponse(err error) []byte {
	return encodeResponse(statusCode(err), []byte(err.Error()))
}
