package server

import (
	"encoding/json"
	"errors"
	"log"
	"net"
	"sync"
	"time"

	"directload/internal/core"
	"directload/internal/metrics"
)

// StatsReply is the JSON payload of OpStats.
type StatsReply struct {
	Engine core.Stats `json:"engine"`
	Conns  int        `json:"conns"`
}

// Server exposes one QinDB engine on a TCP listener. One goroutine per
// connection; requests on a connection are processed in order.
type Server struct {
	db *core.DB

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]bool
	closed   bool
	logf     func(format string, args ...any)
	rangeCap int

	reg *metrics.Registry
	met serverMetrics
}

// serverMetrics holds per-opcode request counters and wall-clock latency
// histograms, indexed by opcode. All handles nil without a registry.
type serverMetrics struct {
	reqs    [OpMetrics + 1]*metrics.Counter
	lat     [OpMetrics + 1]*metrics.Histogram
	badReqs *metrics.Counter
	conns   *metrics.Gauge
}

// SetMetrics attaches a registry (exported via OpMetrics and, in qindbd,
// HTTP). Call before Serve; nil leaves the server uninstrumented.
func (s *Server) SetMetrics(reg *metrics.Registry) {
	s.reg = reg
	if reg == nil {
		s.met = serverMetrics{}
		return
	}
	for op := OpPut; op <= OpMetrics; op++ {
		name := opNames[op]
		s.met.reqs[op] = reg.Counter("server.req." + name)
		s.met.lat[op] = reg.Histogram("server.req." + name + ".latency_us")
	}
	s.met.badReqs = reg.Counter("server.req.bad")
	s.met.conns = reg.Gauge("server.conns.active")
}

// New wraps an engine. The caller keeps ownership of db and must close
// it after the server stops.
func New(db *core.DB) *Server {
	return &Server{
		db:       db,
		conns:    make(map[net.Conn]bool),
		logf:     log.Printf,
		rangeCap: 4096,
	}
}

// SetLogf replaces the server's logger (nil silences it).
func (s *Server) SetLogf(logf func(format string, args ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s.logf = logf
}

// Serve accepts connections on ln until Close. It returns nil after a
// clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("server: closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = true
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// ListenAndServe listens on addr ("host:port", port 0 for ephemeral) and
// serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting and tears down open connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	return err
}

func (s *Server) dropConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
}

func (s *Server) handle(conn net.Conn) {
	s.met.conns.Add(1)
	defer s.met.conns.Add(-1)
	defer s.dropConn(conn)
	for {
		frame, err := readFrame(conn)
		if err != nil {
			return // EOF or teardown
		}
		req, err := decodeRequest(frame)
		var resp []byte
		if err != nil {
			s.met.badReqs.Inc()
			resp = encodeResponse(StatusError, []byte(err.Error()))
		} else {
			resp = s.dispatch(req)
		}
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

// dispatch executes one request against the engine, timing it with the
// wall clock (the client-visible latency, unlike the engine's simulated
// device cost).
func (s *Server) dispatch(req request) []byte {
	if req.Op < OpPut || req.Op > OpMetrics {
		s.met.badReqs.Inc()
		return encodeResponse(StatusError, []byte("unknown op"))
	}
	start := time.Now()
	resp := s.dispatchOp(req)
	s.met.reqs[req.Op].Inc()
	s.met.lat[req.Op].Observe(float64(time.Since(start)) / float64(time.Microsecond))
	return resp
}

func (s *Server) dispatchOp(req request) []byte {
	switch req.Op {
	case OpPing:
		return encodeResponse(StatusOK, []byte("pong"))
	case OpPut, OpPutDedup:
		_, err := s.db.Put(req.Key, req.Version, req.Value, req.Op == OpPutDedup)
		return statusOnly(err)
	case OpGet:
		val, _, err := s.db.Get(req.Key, req.Version)
		if err != nil {
			return errResponse(err)
		}
		return encodeResponse(StatusOK, val)
	case OpDel:
		_, err := s.db.Del(req.Key, req.Version)
		return statusOnly(err)
	case OpDropVersion:
		_, _, err := s.db.DropVersion(req.Version)
		return statusOnly(err)
	case OpHas:
		if s.db.Has(req.Key, req.Version) {
			return encodeResponse(StatusOK, []byte{1})
		}
		return encodeResponse(StatusOK, []byte{0})
	case OpStats:
		s.mu.Lock()
		conns := len(s.conns)
		s.mu.Unlock()
		payload, err := json.Marshal(StatsReply{Engine: s.db.Stats(), Conns: conns})
		if err != nil {
			return errResponse(err)
		}
		return encodeResponse(StatusOK, payload)
	case OpRange:
		// Key = from, Value = exclusive upper bound, Version = limit.
		limit := int(req.Version)
		if limit <= 0 || limit > s.rangeCap {
			limit = s.rangeCap
		}
		var entries []RangeEntry
		s.db.Range(req.Key, req.Value, func(key []byte, ver uint64) bool {
			entries = append(entries, RangeEntry{Key: append([]byte(nil), key...), Version: ver})
			return len(entries) < limit
		})
		return encodeResponse(StatusOK, encodeRangeEntries(entries))
	case OpMetrics:
		if s.reg == nil {
			return encodeResponse(StatusOK, []byte("{}"))
		}
		payload, err := json.Marshal(s.reg)
		if err != nil {
			return errResponse(err)
		}
		return encodeResponse(StatusOK, payload)
	default:
		return encodeResponse(StatusError, []byte("unknown op"))
	}
}

func statusOnly(err error) []byte {
	if err != nil {
		return errResponse(err)
	}
	return encodeResponse(StatusOK, nil)
}

func errResponse(err error) []byte {
	status := StatusError
	switch {
	case errors.Is(err, core.ErrNotFound):
		status = StatusNotFound
	case errors.Is(err, core.ErrDeleted):
		status = StatusDeleted
	}
	return encodeResponse(status, []byte(err.Error()))
}
