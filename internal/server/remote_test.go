package server

import (
	"errors"
	"fmt"
	"net"
	"testing"

	"directload/internal/aof"
	"directload/internal/blockfs"
	"directload/internal/core"
	"directload/internal/mint"
	"directload/internal/ssd"
)

// remoteFactory builds Mint storage stacks whose engines live behind
// real TCP servers — the network-distributed variant of a Mint group.
func remoteFactory(t *testing.T) mint.EngineFactory {
	t.Helper()
	return func(capacity int64, seed int64) (*mint.EngineStack, error) {
		dev, err := ssd.NewDevice(ssd.DefaultConfig(capacity))
		if err != nil {
			return nil, err
		}
		fs := blockfs.NewNativeFS(dev)
		db, err := core.Open(fs, core.Options{
			AOF: aof.Config{FileSize: 2 << 20, GCThreshold: 0.25}, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		srv := New(db)
		srv.SetLogf(nil)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go srv.Serve(ln)
		t.Cleanup(func() {
			srv.Close()
			db.Close()
		})
		dial := func() (*RemoteEngine, error) {
			cl, err := Dial(ln.Addr().String())
			if err != nil {
				return nil, err
			}
			return NewRemoteEngine(cl), nil
		}
		eng, err := dial()
		if err != nil {
			return nil, err
		}
		stack := &mint.EngineStack{
			Device:    dev,
			UsedBytes: fs.UsedBytes,
		}
		stack.Engine = eng
		stack.Reopen = func() (mint.Engine, error) {
			// Node recovery over the wire: reconnect; the server-side
			// engine survived (in a real deployment the daemon restarts
			// and recovers from its AOFs first).
			return dial()
		}
		stack.Stats = func() mint.EngineStats {
			st := db.Stats()
			return mint.EngineStats{
				Keys:           st.Keys,
				UserWriteBytes: st.UserWriteBytes,
				DiskBytes:      st.Store.DiskBytes,
				GCRuns:         st.Store.GCRuns,
			}
		}
		return stack, nil
	}
}

// TestMintOverTCP assembles a replication group from TCP-served QinDB
// nodes and exercises the full placement/replication/read path over the
// real network stack.
func TestMintOverTCP(t *testing.T) {
	c, err := mint.New(mint.Config{
		Groups:        2,
		NodesPerGroup: 3,
		Replicas:      3,
		NodeCapacity:  64 << 20,
		Factory:       remoteFactory(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 60; i++ {
		key := []byte(fmt.Sprintf("net/%03d", i))
		if _, err := c.Put(key, 1, []byte(fmt.Sprintf("payload-%d", i)), false); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	for i := 0; i < 60; i += 7 {
		key := []byte(fmt.Sprintf("net/%03d", i))
		val, _, err := c.Get(key, 1)
		if err != nil || string(val) != fmt.Sprintf("payload-%d", i) {
			t.Fatalf("Get %d = %q, %v", i, val, err)
		}
	}
	// Dedup over the distributed wire path.
	if _, err := c.Put([]byte("net/000"), 2, nil, true); err != nil {
		t.Fatal(err)
	}
	val, _, err := c.Get([]byte("net/000"), 2)
	if err != nil || string(val) != "payload-0" {
		t.Fatalf("dedup Get = %q, %v", val, err)
	}
	// Delete semantics carry sentinel errors across the wire.
	if _, err := c.Del([]byte("net/001"), 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get([]byte("net/001"), 1); !errors.Is(err, core.ErrDeleted) {
		t.Fatalf("deleted Get err = %v (sentinel lost over the wire)", err)
	}
	// Failure masking: kill one node, reads keep working.
	ids := c.Nodes()
	if err := c.FailNode(ids[0]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i += 11 {
		if _, _, err := c.Get([]byte(fmt.Sprintf("net/%03d", i)), 1); err != nil {
			t.Fatalf("Get with failed node: %v", err)
		}
	}
	// Recovery reconnects.
	if _, err := c.RecoverNode(ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get([]byte("net/002"), 1); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Nodes != 6 || st.Keys == 0 {
		t.Fatalf("Stats = %+v", st)
	}
}
