package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"directload/internal/metrics"
)

// errClientClosed reports use after Close.
var errClientClosed = errors.New("qindb client: closed")

// dialOptions collects the functional Dial configuration.
type dialOptions struct {
	timeout     time.Duration // default per-op deadline (0 = none)
	poolSize    int           // connections in the pool
	maxInFlight int           // per-connection pipelining bound
	maxProto    int           // highest protocol version to negotiate
	noTrace     bool          // do not offer the trace feature in the hello
	reg         *metrics.Registry
}

// DialOption configures Dial.
type DialOption func(*dialOptions)

// WithTimeout sets the default per-operation deadline, applied whenever
// a call's context carries none. It also bounds the TCP dial and the
// protocol handshake. Zero (the default) means no deadline.
func WithTimeout(d time.Duration) DialOption {
	return func(o *dialOptions) { o.timeout = d }
}

// WithPoolSize dials n connections and spreads requests across them
// round-robin — concurrent callers stop contending for one wire.
// Values < 1 mean 1.
func WithPoolSize(n int) DialOption {
	return func(o *dialOptions) { o.poolSize = n }
}

// WithMaxInFlight bounds the number of pipelined requests outstanding
// per connection; further calls block until responses drain (the
// client-side backpressure knob). Values < 1 reset the default.
func WithMaxInFlight(n int) DialOption {
	return func(o *dialOptions) { o.maxInFlight = n }
}

// WithMaxProtocol caps the negotiated protocol version.
// WithMaxProtocol(ProtoV1) skips the hello entirely and speaks the
// legacy in-order protocol — wire-compatible with servers that predate
// v2.
func WithMaxProtocol(v int) DialOption {
	return func(o *dialOptions) {
		if v >= ProtoV1 && v <= MaxProto {
			o.maxProto = v
		}
	}
}

// WithTracePropagation controls whether the client offers the trace
// feature when negotiating v2 (default on). When granted by the server,
// any call whose context carries an active span (see
// metrics.ContextWithSpan) ships that span's identity in the request
// frame, and the server parents its handler spans under it. Calls with
// no active span are wire-identical to a trace-less connection, so
// leaving this on costs nothing until a trace is started.
func WithTracePropagation(enabled bool) DialOption {
	return func(o *dialOptions) { o.noTrace = !enabled }
}

// WithMetrics attaches a registry for the client-side pool gauges:
// client.pool.conns (connections dialed) and client.pool.inflight
// (requests currently outstanding across the pool).
func WithMetrics(reg *metrics.Registry) DialOption {
	return func(o *dialOptions) { o.reg = reg }
}

// Client is a QinDB client over a small pool of TCP connections. It is
// safe for concurrent use. On protocol v2 connections requests are
// pipelined: many calls share one connection simultaneously and
// complete out of order; on v1 connections calls serialize per
// connection. Methods taking a context honor its deadline and
// cancellation via connection deadlines; the *Context forms are the
// primary API and the bare forms are deprecated wrappers.
type Client struct {
	addr string
	opts dialOptions

	mu     sync.Mutex // guards conns slots (lazy redial) and closed
	conns  []*wireConn
	closed bool
	rr     atomic.Uint32

	poolConns *metrics.Gauge
	inflight  *metrics.Gauge
}

// Dial connects to a QinDB server and negotiates the protocol version
// (old servers transparently fall back to v1). Options configure
// deadlines, pool size and pipelining depth; Dial(addr) alone keeps the
// historical single-connection behavior.
func Dial(addr string, opts ...DialOption) (*Client, error) {
	o := dialOptions{poolSize: 1, maxInFlight: defaultMaxInFlight, maxProto: MaxProto}
	for _, opt := range opts {
		opt(&o)
	}
	if o.poolSize < 1 {
		o.poolSize = 1
	}
	if o.maxInFlight < 1 {
		o.maxInFlight = defaultMaxInFlight
	}
	c := &Client{
		addr:      addr,
		opts:      o,
		conns:     make([]*wireConn, o.poolSize),
		poolConns: o.reg.Gauge("client.pool.conns"),
		inflight:  o.reg.Gauge("client.pool.inflight"),
	}
	for i := range c.conns {
		w, err := dialWire(addr, o)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.conns[i] = w
		c.poolConns.Add(1)
	}
	return c, nil
}

// Proto returns the negotiated protocol version (of the first pooled
// connection).
func (c *Client) Proto() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.conns) == 0 || c.conns[0] == nil {
		return 0
	}
	return c.conns[0].proto
}

// TraceEnabled reports whether the server granted the trace feature (on
// the first pooled connection) — i.e. whether span contexts actually
// cross the wire on this client.
func (c *Client) TraceEnabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.conns) == 0 || c.conns[0] == nil {
		return false
	}
	return c.conns[0].feats&helloFeatTrace != 0
}

// Close tears down every pooled connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	var errs []error
	for _, w := range c.conns {
		if w == nil {
			continue
		}
		if err := w.close(); err != nil {
			errs = append(errs, err)
		}
		c.poolConns.Add(-1)
	}
	return errors.Join(errs...)
}

// pick returns a healthy pooled connection, redialing a broken slot in
// place (a node restart heals on the next call instead of poisoning
// 1/poolSize of all traffic).
func (c *Client) pick() (*wireConn, error) {
	i := int(c.rr.Add(1)) % len(c.conns)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errClientClosed
	}
	w := c.conns[i]
	if w != nil && !w.broken() {
		return w, nil
	}
	if w != nil {
		w.close()
	}
	nw, err := dialWire(c.addr, c.opts)
	if err != nil {
		if c.conns[i] != nil {
			c.poolConns.Add(-1)
		}
		c.conns[i] = nil
		return nil, err
	}
	if c.conns[i] == nil {
		c.poolConns.Add(1)
	}
	c.conns[i] = nw
	return nw, nil
}

// withTimeout applies the configured default deadline when ctx carries
// none.
func (c *Client) withTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.opts.timeout <= 0 {
		return ctx, func() {}
	}
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, c.opts.timeout)
}

// do runs one request through the pool.
func (c *Client) do(ctx context.Context, req request) (uint8, []byte, error) {
	body, err := encodeRequest(req)
	if err != nil {
		return 0, nil, err
	}
	ctx, cancel := c.withTimeout(ctx)
	defer cancel()
	w, err := c.pick()
	if err != nil {
		return 0, nil, err
	}
	c.inflight.Add(1)
	defer c.inflight.Add(-1)
	return w.call(ctx, body)
}

// --- context-aware API ------------------------------------------------------

// PutContext stores value under (key, version); dedup marks a
// value-stripped entry whose payload lives in an older version.
func (c *Client) PutContext(ctx context.Context, key []byte, version uint64, value []byte, dedup bool) error {
	op := OpPut
	if dedup {
		op = OpPutDedup
	}
	status, payload, err := c.do(ctx, request{Op: op, Version: version, Key: key, Value: value})
	if err != nil {
		return err
	}
	return statusErr(status, payload)
}

// GetContext fetches the value at (key, version), following dedup
// traceback server-side.
func (c *Client) GetContext(ctx context.Context, key []byte, version uint64) ([]byte, error) {
	status, payload, err := c.do(ctx, request{Op: OpGet, Version: version, Key: key})
	if err != nil {
		return nil, err
	}
	if err := statusErr(status, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// DelContext marks (key, version) deleted.
func (c *Client) DelContext(ctx context.Context, key []byte, version uint64) error {
	status, payload, err := c.do(ctx, request{Op: OpDel, Version: version, Key: key})
	if err != nil {
		return err
	}
	return statusErr(status, payload)
}

// DropVersionContext retires a whole data version.
func (c *Client) DropVersionContext(ctx context.Context, version uint64) error {
	status, payload, err := c.do(ctx, request{Op: OpDropVersion, Version: version})
	if err != nil {
		return err
	}
	return statusErr(status, payload)
}

// HasContext reports whether (key, version) exists and is live.
func (c *Client) HasContext(ctx context.Context, key []byte, version uint64) (bool, error) {
	status, payload, err := c.do(ctx, request{Op: OpHas, Version: version, Key: key})
	if err != nil {
		return false, err
	}
	if err := statusErr(status, payload); err != nil {
		return false, err
	}
	return len(payload) == 1 && payload[0] == 1, nil
}

// RangeContext lists newest-live (key, version) pairs in [from, to).
// limit <= 0 requests the server default; the second return value is
// the limit the server actually applied (its cap clamps large asks), or
// -1 when the server speaks v1 and does not report one.
func (c *Client) RangeContext(ctx context.Context, from, to []byte, limit int) ([]RangeEntry, int, error) {
	status, payload, err := c.do(ctx, request{
		Op: OpRange, Version: uint64(int64(limit)), Key: from, Value: to,
	})
	if err != nil {
		return nil, 0, err
	}
	if err := statusErr(status, payload); err != nil {
		return nil, 0, err
	}
	if c.Proto() >= ProtoV2 {
		return decodeRangeReply(payload)
	}
	entries, err := decodeRangeEntries(payload)
	return entries, -1, err
}

// StatsContext fetches engine statistics.
func (c *Client) StatsContext(ctx context.Context) (StatsReply, error) {
	var out StatsReply
	status, payload, err := c.do(ctx, request{Op: OpStats})
	if err != nil {
		return out, err
	}
	if err := statusErr(status, payload); err != nil {
		return out, err
	}
	err = json.Unmarshal(payload, &out)
	return out, err
}

// MetricsContext fetches the server's metrics registry snapshot.
// Counter and gauge values decode as float64; histograms as nested maps
// (count, mean, p50, p99, ...). An uninstrumented server returns an
// empty map.
func (c *Client) MetricsContext(ctx context.Context) (map[string]any, error) {
	status, payload, err := c.do(ctx, request{Op: OpMetrics})
	if err != nil {
		return nil, err
	}
	if err := statusErr(status, payload); err != nil {
		return nil, err
	}
	out := make(map[string]any)
	err = json.Unmarshal(payload, &out)
	return out, err
}

// PingContext checks liveness.
func (c *Client) PingContext(ctx context.Context) error {
	status, payload, err := c.do(ctx, request{Op: OpPing})
	if err != nil {
		return err
	}
	if err := statusErr(status, payload); err != nil {
		return err
	}
	if string(payload) != "pong" {
		return fmt.Errorf("qindb client: unexpected ping reply %q", payload)
	}
	return nil
}

// --- deprecated context-free wrappers ---------------------------------------

// Put stores value under (key, version).
//
// Deprecated: use PutContext.
func (c *Client) Put(key []byte, version uint64, value []byte, dedup bool) error {
	return c.PutContext(context.Background(), key, version, value, dedup)
}

// Get fetches the value at (key, version).
//
// Deprecated: use GetContext.
func (c *Client) Get(key []byte, version uint64) ([]byte, error) {
	return c.GetContext(context.Background(), key, version)
}

// Del marks (key, version) deleted.
//
// Deprecated: use DelContext.
func (c *Client) Del(key []byte, version uint64) error {
	return c.DelContext(context.Background(), key, version)
}

// DropVersion retires a whole data version.
//
// Deprecated: use DropVersionContext.
func (c *Client) DropVersion(version uint64) error {
	return c.DropVersionContext(context.Background(), version)
}

// Has reports whether (key, version) exists and is live.
//
// Deprecated: use HasContext.
func (c *Client) Has(key []byte, version uint64) (bool, error) {
	return c.HasContext(context.Background(), key, version)
}

// Range lists up to limit newest-live (key, version) pairs in [from,
// to), discarding the server-applied limit.
//
// Deprecated: use RangeContext.
func (c *Client) Range(from, to []byte, limit int) ([]RangeEntry, error) {
	entries, _, err := c.RangeContext(context.Background(), from, to, limit)
	return entries, err
}

// Stats fetches engine statistics.
//
// Deprecated: use StatsContext.
func (c *Client) Stats() (StatsReply, error) {
	return c.StatsContext(context.Background())
}

// Metrics fetches the server's metrics registry snapshot.
//
// Deprecated: use MetricsContext.
func (c *Client) Metrics() (map[string]any, error) {
	return c.MetricsContext(context.Background())
}

// Ping checks liveness.
//
// Deprecated: use PingContext.
func (c *Client) Ping() error {
	return c.PingContext(context.Background())
}

// --- wire connection --------------------------------------------------------

// wireResp is one decoded response delivered to a waiter.
type wireResp struct {
	status  uint8
	payload []byte
	err     error
}

// wireConn is one TCP connection. In v2 mode a background reader
// demultiplexes responses to waiters by sequence number, so many calls
// can be in flight at once (bounded by sem); in v1 mode calls serialize
// under wmu, one round trip at a time.
type wireConn struct {
	c     net.Conn
	br    *bufio.Reader // sole reader: v1 serializes reads, v2 reads only in readLoop
	proto int
	feats uint8 // feature bits the server granted (helloFeat*)

	wmu sync.Mutex // serializes frame writes (and whole v1 round trips)

	// v2 demux state.
	pmu     sync.Mutex
	nextSeq uint32
	pend    map[uint32]chan wireResp
	sem     chan struct{}
	done    chan struct{} // closed by the reader on connection death
	readErr error         // set before done is closed

	// v2 write coalescing: senders append frames under fmu; the flush
	// goroutine drains the buffer with one write per syscall. Growth is
	// bounded by sem — at most maxInFlight frames can be buffered.
	fmu  sync.Mutex
	fbuf []byte
	fsig chan struct{} // capacity 1: "the buffer is non-empty"

	bad  atomic.Bool // any I/O failure poisons the conn (stream unsynced)
	once sync.Once
}

// dialWire opens and negotiates one connection.
func dialWire(addr string, o dialOptions) (*wireConn, error) {
	nc, err := net.DialTimeout("tcp", addr, o.timeout)
	if err != nil {
		return nil, err
	}
	w := &wireConn{c: nc, br: bufio.NewReader(nc), proto: ProtoV1, done: make(chan struct{})}
	if o.maxProto >= ProtoV2 {
		if err := w.negotiate(o); err != nil {
			nc.Close()
			return nil, err
		}
	}
	if w.proto >= ProtoV2 {
		w.pend = make(map[uint32]chan wireResp)
		w.sem = make(chan struct{}, o.maxInFlight)
		w.fsig = make(chan struct{}, 1)
		go w.readLoop()
		go w.flushLoop(o.timeout)
	}
	return w, nil
}

// negotiate sends the hello and interprets the answer. A StatusError
// reply means the server predates OpHello; the connection stays v1. The
// hello's Value carries the offered feature bits: a feature-aware
// server answers with a second payload byte naming the granted subset,
// an older server ignores the Value and answers one byte — either way
// the connection comes up with the right feature set.
func (w *wireConn) negotiate(o dialOptions) error {
	hello := request{Op: OpHello, Version: uint64(o.maxProto)}
	var offered uint8
	if !o.noTrace {
		offered = helloFeatTrace
		hello.Value = []byte{offered}
	}
	body, err := encodeRequest(hello)
	if err != nil {
		return err
	}
	if o.timeout > 0 {
		w.c.SetDeadline(time.Now().Add(o.timeout))
		defer w.c.SetDeadline(time.Time{})
	}
	if err := writeFrame(w.c, body); err != nil {
		return err
	}
	frame, err := readFrame(w.br)
	if err != nil {
		return err
	}
	status, payload, err := decodeResponse(frame)
	if err != nil {
		return err
	}
	if status != StatusOK {
		return nil // legacy server: "unknown op", stay on v1
	}
	if len(payload) != 1 && len(payload) != 2 {
		return fmt.Errorf("qindb client: malformed hello reply (%d bytes)", len(payload))
	}
	if v := int(payload[0]); v >= ProtoV2 && v <= MaxProto {
		w.proto = v
	}
	if len(payload) == 2 && w.proto >= ProtoV2 {
		w.feats = payload[1] & offered
	}
	return nil
}

// broken reports whether the connection is unusable.
func (w *wireConn) broken() bool { return w.bad.Load() }

// close tears the connection down and fails any waiters.
func (w *wireConn) close() error {
	w.bad.Store(true)
	err := w.c.Close()
	if w.proto < ProtoV2 {
		w.once.Do(func() {
			w.readErr = errClientClosed
			close(w.done)
		})
	}
	return err
}

// call runs one request/response exchange.
func (w *wireConn) call(ctx context.Context, body []byte) (uint8, []byte, error) {
	if w.proto >= ProtoV2 {
		return w.callV2(ctx, body)
	}
	return w.callV1(ctx, body)
}

// callV1 is the legacy serialized round trip. Any I/O failure (deadline
// included) can leave a partial frame on the stream, so it marks the
// connection broken; the pool redials on the next call.
func (w *wireConn) callV1(ctx context.Context, body []byte) (uint8, []byte, error) {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	if w.bad.Load() {
		return 0, nil, errClientClosed
	}
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	if dl, ok := ctx.Deadline(); ok {
		w.c.SetDeadline(dl)
	} else {
		w.c.SetDeadline(time.Time{})
	}
	if err := writeFrame(w.c, body); err != nil {
		return 0, nil, w.ioErr(ctx, err)
	}
	frame, err := readFrame(w.br)
	if err != nil {
		return 0, nil, w.ioErr(ctx, err)
	}
	return decodeResponse(frame)
}

// ioErr poisons the connection and prefers the context's verdict over
// the raw net error when the deadline was the cause.
func (w *wireConn) ioErr(ctx context.Context, err error) error {
	w.bad.Store(true)
	w.c.Close()
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return err
}

// callV2 pipelines one request: write it, then wait for its response.
func (w *wireConn) callV2(ctx context.Context, body []byte) (uint8, []byte, error) {
	pc, err := w.sendV2(ctx, body)
	if err != nil {
		return 0, nil, err
	}
	return w.awaitV2(ctx, pc)
}

// pendingCall is one v2 request that has been written but not yet
// answered.
type pendingCall struct {
	seq uint32
	ch  chan wireResp
}

// sendV2 acquires an in-flight slot, registers a sequence number, and
// queues the frame for the flush goroutine — the synchronous half of a
// pipelined call, cheap enough to run inline on the issuing goroutine.
// The slot is released when the response arrives (whether or not anyone
// awaits it) or the call is unregistered. Write failures surface
// through connection death rather than here.
func (w *wireConn) sendV2(ctx context.Context, body []byte) (pendingCall, error) {
	select {
	case w.sem <- struct{}{}:
	case <-ctx.Done():
		return pendingCall{}, ctx.Err()
	case <-w.done:
		return pendingCall{}, w.readErr
	}

	ch := make(chan wireResp, 1)
	w.pmu.Lock()
	w.nextSeq++
	seq := w.nextSeq
	w.pend[seq] = ch
	w.pmu.Unlock()

	// On a trace-negotiated connection a call whose context carries an
	// active span ships it: the seq's high bit flags the frame and the
	// trace header rides before the op. The pending map and the response
	// always use the unflagged seq.
	var sc metrics.SpanContext
	traced := false
	if w.feats&helloFeatTrace != 0 {
		sc, traced = metrics.SpanFromContext(ctx)
		traced = traced && sc.Valid()
	}
	w.fmu.Lock()
	if traced {
		w.fbuf = appendFrameSeqTrace(w.fbuf, seq|seqTraceFlag, sc, body)
	} else {
		w.fbuf = appendFrameSeq(w.fbuf, seq, body)
	}
	w.fmu.Unlock()
	select {
	case w.fsig <- struct{}{}:
	default: // a wakeup is already queued
	}
	return pendingCall{seq: seq, ch: ch}, nil
}

// flushLoop writes queued v2 frames, coalescing everything that
// accumulated while the previous syscall was in flight into the next
// one. A write failure poisons the connection and closes it, which
// fails every pending call via the read loop.
func (w *wireConn) flushLoop(timeout time.Duration) {
	for {
		select {
		case <-w.fsig:
		case <-w.done:
			return
		}
		w.fmu.Lock()
		buf := w.fbuf
		w.fbuf = nil
		w.fmu.Unlock()
		if len(buf) == 0 {
			continue
		}
		if timeout > 0 {
			w.c.SetWriteDeadline(time.Now().Add(timeout))
		}
		if _, err := w.c.Write(buf); err != nil {
			w.bad.Store(true)
			w.c.Close() // the read loop fails all pending calls
			return
		}
	}
}

// awaitV2 waits for the demuxed response, the context, or connection
// death. A cancellation or teardown can race with the response itself:
// if the reader already claimed the sequence number, its outcome is in
// flight to pc.ch, so take it rather than the wakeup's error. Otherwise
// unregistering guarantees no response will come (the reader discards
// unclaimed sequence numbers; the stream itself stays synced).
func (w *wireConn) awaitV2(ctx context.Context, pc pendingCall) (uint8, []byte, error) {
	select {
	case r := <-pc.ch:
		return r.status, r.payload, r.err
	case <-ctx.Done():
		if w.unregister(pc.seq) {
			return 0, nil, ctx.Err()
		}
	case <-w.done:
		if w.unregister(pc.seq) {
			return 0, nil, w.readErr
		}
	}
	r := <-pc.ch
	return r.status, r.payload, r.err
}

// unregister removes seq from the pending map, reporting whether this
// call removed it. Whoever removes the entry — this or the read loop —
// owns releasing the in-flight slot, so the release happens exactly
// once per sequence number. A false return means the reader claimed the
// call first and will deliver its outcome on the pending channel.
func (w *wireConn) unregister(seq uint32) bool {
	w.pmu.Lock()
	_, ok := w.pend[seq]
	delete(w.pend, seq)
	w.pmu.Unlock()
	if ok {
		<-w.sem
	}
	return ok
}

// readLoop demultiplexes v2 responses to their waiters by sequence
// number. On connection death it fails every pending waiter.
func (w *wireConn) readLoop() {
	for {
		seq, frame, err := readFrameSeq(w.br)
		if err != nil {
			w.bad.Store(true)
			w.pmu.Lock()
			pend := w.pend
			w.pend = make(map[uint32]chan wireResp)
			w.pmu.Unlock()
			w.once.Do(func() {
				w.readErr = fmt.Errorf("qindb client: connection lost: %w", err)
				close(w.done)
			})
			for _, ch := range pend {
				ch <- wireResp{err: w.readErr}
			}
			return
		}
		status, payload, derr := decodeResponse(frame)
		w.pmu.Lock()
		ch := w.pend[seq]
		delete(w.pend, seq)
		w.pmu.Unlock()
		if ch != nil {
			ch <- wireResp{status: status, payload: payload, err: derr}
			<-w.sem // response delivered: free the in-flight slot
		}
	}
}
