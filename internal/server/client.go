package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
)

// Client errors mirror the engine's sentinels across the wire.
var (
	ErrNotFound = errors.New("qindb client: not found")
	ErrDeleted  = errors.New("qindb client: deleted")
)

// Client is a synchronous QinDB client over one TCP connection. It is
// safe for concurrent use; requests are serialized on the connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to a QinDB server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and decodes the response.
func (c *Client) roundTrip(req request) (uint8, []byte, error) {
	body, err := encodeRequest(req)
	if err != nil {
		return 0, nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.conn, body); err != nil {
		return 0, nil, err
	}
	frame, err := readFrame(c.conn)
	if err != nil {
		return 0, nil, err
	}
	return decodeResponse(frame)
}

// statusErr maps a non-OK status to a sentinel error.
func statusErr(status uint8, payload []byte) error {
	switch status {
	case StatusOK:
		return nil
	case StatusNotFound:
		return fmt.Errorf("%w: %s", ErrNotFound, payload)
	case StatusDeleted:
		return fmt.Errorf("%w: %s", ErrDeleted, payload)
	default:
		return fmt.Errorf("qindb client: server error: %s", payload)
	}
}

// Put stores value under (key, version); dedup marks a value-stripped
// entry whose payload lives in an older version.
func (c *Client) Put(key []byte, version uint64, value []byte, dedup bool) error {
	op := OpPut
	if dedup {
		op = OpPutDedup
	}
	status, payload, err := c.roundTrip(request{Op: op, Version: version, Key: key, Value: value})
	if err != nil {
		return err
	}
	return statusErr(status, payload)
}

// Get fetches the value at (key, version), following dedup traceback
// server-side.
func (c *Client) Get(key []byte, version uint64) ([]byte, error) {
	status, payload, err := c.roundTrip(request{Op: OpGet, Version: version, Key: key})
	if err != nil {
		return nil, err
	}
	if err := statusErr(status, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// Del marks (key, version) deleted.
func (c *Client) Del(key []byte, version uint64) error {
	status, payload, err := c.roundTrip(request{Op: OpDel, Version: version, Key: key})
	if err != nil {
		return err
	}
	return statusErr(status, payload)
}

// DropVersion retires a whole data version.
func (c *Client) DropVersion(version uint64) error {
	status, payload, err := c.roundTrip(request{Op: OpDropVersion, Version: version})
	if err != nil {
		return err
	}
	return statusErr(status, payload)
}

// Has reports whether (key, version) exists and is live.
func (c *Client) Has(key []byte, version uint64) (bool, error) {
	status, payload, err := c.roundTrip(request{Op: OpHas, Version: version, Key: key})
	if err != nil {
		return false, err
	}
	if err := statusErr(status, payload); err != nil {
		return false, err
	}
	return len(payload) == 1 && payload[0] == 1, nil
}

// Range lists up to limit newest-live (key, version) pairs in [from, to).
func (c *Client) Range(from, to []byte, limit int) ([]RangeEntry, error) {
	status, payload, err := c.roundTrip(request{
		Op: OpRange, Version: uint64(limit), Key: from, Value: to,
	})
	if err != nil {
		return nil, err
	}
	if err := statusErr(status, payload); err != nil {
		return nil, err
	}
	return decodeRangeEntries(payload)
}

// Stats fetches engine statistics.
func (c *Client) Stats() (StatsReply, error) {
	var out StatsReply
	status, payload, err := c.roundTrip(request{Op: OpStats})
	if err != nil {
		return out, err
	}
	if err := statusErr(status, payload); err != nil {
		return out, err
	}
	err = json.Unmarshal(payload, &out)
	return out, err
}

// Metrics fetches the server's metrics registry snapshot. Counter and
// gauge values decode as float64; histograms as nested maps (count,
// mean, p50, p99, ...). An uninstrumented server returns an empty map.
func (c *Client) Metrics() (map[string]any, error) {
	status, payload, err := c.roundTrip(request{Op: OpMetrics})
	if err != nil {
		return nil, err
	}
	if err := statusErr(status, payload); err != nil {
		return nil, err
	}
	out := make(map[string]any)
	err = json.Unmarshal(payload, &out)
	return out, err
}

// Ping checks liveness.
func (c *Client) Ping() error {
	status, payload, err := c.roundTrip(request{Op: OpPing})
	if err != nil {
		return err
	}
	if err := statusErr(status, payload); err != nil {
		return err
	}
	if string(payload) != "pong" {
		return fmt.Errorf("qindb client: unexpected ping reply %q", payload)
	}
	return nil
}
