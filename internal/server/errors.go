package server

import (
	"errors"

	"directload/internal/core"
)

// Client sentinel errors.
//
// Deprecated: match against the engine sentinels instead —
// errors.Is(err, core.ErrNotFound) and errors.Is(err, core.ErrDeleted)
// hold across the wire via StatusError. These remain so existing
// errors.Is checks keep working.
var (
	ErrNotFound = errors.New("qindb client: not found")
	ErrDeleted  = errors.New("qindb client: deleted")
)

// StatusError is a non-OK server reply carried back to the caller. It
// is the single error representation for the whole wire path: the
// client surfaces one for every failing request (and Batcher for every
// failing sub-op), and errors.Is maps it onto the engine's sentinels,
// so errors.Is(err, core.ErrNotFound) behaves identically whether the
// engine is local or behind TCP — no string matching, no per-layer
// translation tables.
type StatusError struct {
	Code uint8  // StatusNotFound, StatusDeleted or StatusError
	Msg  string // server-side error text
}

// Error renders the status with its server-side message.
func (e *StatusError) Error() string {
	var prefix string
	switch e.Code {
	case StatusNotFound:
		prefix = "qindb client: not found"
	case StatusDeleted:
		prefix = "qindb client: deleted"
	default:
		prefix = "qindb client: server error"
	}
	if e.Msg == "" {
		return prefix
	}
	return prefix + ": " + e.Msg
}

// Is maps the wire status onto the engine sentinels (and the deprecated
// client-local ones), making errors.Is transparent across the network.
func (e *StatusError) Is(target error) bool {
	switch target {
	case core.ErrNotFound, ErrNotFound:
		return e.Code == StatusNotFound
	case core.ErrDeleted, ErrDeleted:
		return e.Code == StatusDeleted
	}
	return false
}

// statusErr converts a decoded reply into a *StatusError (nil for OK).
func statusErr(status uint8, payload []byte) error {
	if status == StatusOK {
		return nil
	}
	return &StatusError{Code: status, Msg: string(payload)}
}
