package server

import (
	"context"
	"errors"
	"sync"
)

// Pipeline issues requests without waiting for their responses, keeping
// many operations in flight across the client's connection pool. Each
// method returns immediately with a Future; waiting on the future
// yields that operation's outcome. On a v2 connection the requests
// genuinely share the wire (the server completes them concurrently and
// out of order); against a v1 server the futures degrade to serialized
// round trips but the API is identical.
//
// Pipelined operations may execute in any order — a caller that needs
// op B to observe op A must wait on A's future before issuing B.
// Backpressure comes from the connection's max-in-flight bound: once
// the window is full, issuing another operation blocks until responses
// drain.
type Pipeline struct {
	c *Client
}

// Pipeline returns an asynchronous view of the client. The pipeline
// shares the client's connections; it needs no separate lifecycle.
func (c *Client) Pipeline() *Pipeline { return &Pipeline{c: c} }

// Future is one in-flight operation's pending outcome. On a v2
// connection the request is already on the wire when the Future is
// returned; the first Err/Value call collects the response. Futures are
// safe for concurrent waiters.
type Future struct {
	once    sync.Once
	wait    func(f *Future) // collects the outcome; nil when pre-resolved
	payload []byte
	err     error
}

func (f *Future) resolve() {
	f.once.Do(func() {
		if f.wait != nil {
			f.wait(f)
			f.wait = nil
		}
	})
}

// Err blocks until the operation completes and returns its error (nil
// on success). Safe to call multiple times.
func (f *Future) Err() error {
	f.resolve()
	return f.err
}

// Value blocks until the operation completes and returns its payload
// (the value for gets, nil for mutations) and error.
func (f *Future) Value() ([]byte, error) {
	f.resolve()
	return f.payload, f.err
}

// fill interprets one wire outcome into the future's fields.
func (f *Future) fill(status uint8, payload []byte, err error) {
	if err == nil {
		err = statusErr(status, payload)
	}
	if err != nil {
		f.err = err
		return
	}
	f.payload = payload
}

// issue starts one asynchronous request. On a v2 connection the frame
// is written inline — no goroutine per operation — and the response is
// collected lazily by the future. A v1 connection can't interleave
// round trips, so the whole call runs in the background instead.
func (p *Pipeline) issue(ctx context.Context, req request) *Future {
	c := p.c
	body, err := encodeRequest(req)
	if err != nil {
		return &Future{err: err}
	}
	ctx, cancel := c.withTimeout(ctx)
	w, err := c.pick()
	if err != nil {
		cancel()
		return &Future{err: err}
	}
	if w.proto >= ProtoV2 {
		c.inflight.Add(1)
		pc, err := w.sendV2(ctx, body)
		if err != nil {
			c.inflight.Add(-1)
			cancel()
			return &Future{err: err}
		}
		return &Future{wait: func(f *Future) {
			f.fill(w.awaitV2(ctx, pc))
			c.inflight.Add(-1)
			cancel()
		}}
	}
	done := make(chan struct{})
	var status uint8
	var payload []byte
	var cerr error
	go func() {
		defer close(done)
		c.inflight.Add(1)
		status, payload, cerr = w.call(ctx, body)
		c.inflight.Add(-1)
		cancel()
	}()
	return &Future{wait: func(f *Future) {
		<-done
		f.fill(status, payload, cerr)
	}}
}

// Put issues an asynchronous put.
func (p *Pipeline) Put(ctx context.Context, key []byte, version uint64, value []byte, dedup bool) *Future {
	op := OpPut
	if dedup {
		op = OpPutDedup
	}
	return p.issue(ctx, request{Op: op, Version: version, Key: key, Value: value})
}

// Get issues an asynchronous get; the value arrives via Future.Value.
func (p *Pipeline) Get(ctx context.Context, key []byte, version uint64) *Future {
	return p.issue(ctx, request{Op: OpGet, Version: version, Key: key})
}

// Del issues an asynchronous delete.
func (p *Pipeline) Del(ctx context.Context, key []byte, version uint64) *Future {
	return p.issue(ctx, request{Op: OpDel, Version: version, Key: key})
}

// DropVersion issues an asynchronous version drop.
func (p *Pipeline) DropVersion(ctx context.Context, version uint64) *Future {
	return p.issue(ctx, request{Op: OpDropVersion, Version: version})
}

// Wait blocks until every given future completes and returns the
// joined errors among them (in argument order), or nil when all
// succeeded.
func Wait(futures ...*Future) error {
	var errs []error
	for _, f := range futures {
		if err := f.Err(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
