package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"directload/internal/core"
	"directload/internal/metrics"
)

// TestNegotiationDefaultsToV2 verifies a plain Dial lands on v2 against
// a new server.
func TestNegotiationDefaultsToV2(t *testing.T) {
	_, cl := startServer(t)
	if got := cl.Proto(); got != ProtoV2 {
		t.Fatalf("Proto = %d, want %d", got, ProtoV2)
	}
}

// TestInteropV1ClientNewServer pins the backward direction: a client
// capped at v1 (wire-identical to an old client: it never sends
// OpHello) works against a v2 server, including range decoding.
func TestInteropV1ClientNewServer(t *testing.T) {
	s, _ := startServer(t)
	cl, err := Dial(s.Addr().String(), WithMaxProtocol(ProtoV1))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if got := cl.Proto(); got != ProtoV1 {
		t.Fatalf("Proto = %d, want %d", got, ProtoV1)
	}
	ctx := context.Background()
	if err := cl.PutContext(ctx, []byte("v1k"), 1, []byte("v1v"), false); err != nil {
		t.Fatal(err)
	}
	val, err := cl.GetContext(ctx, []byte("v1k"), 1)
	if err != nil || string(val) != "v1v" {
		t.Fatalf("Get = %q, %v", val, err)
	}
	entries, applied, err := cl.RangeContext(ctx, nil, nil, 10)
	if err != nil || len(entries) != 1 {
		t.Fatalf("Range = %d entries, %v", len(entries), err)
	}
	if applied != -1 {
		t.Fatalf("v1 applied limit = %d, want -1 (unreported)", applied)
	}
}

// TestInteropNewClientV1Server pins the forward direction: a v2 client
// negotiates down against a server capped at v1 and keeps working.
func TestInteropNewClientV1Server(t *testing.T) {
	s, _ := startServer(t) // startServer's own client predates the cap; ignore it
	s.SetMaxProtocol(ProtoV1)
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if got := cl.Proto(); got != ProtoV1 {
		t.Fatalf("Proto = %d, want %d", got, ProtoV1)
	}
	ctx := context.Background()
	if err := cl.PutContext(ctx, []byte("down"), 1, []byte("graded"), false); err != nil {
		t.Fatal(err)
	}
	if val, err := cl.GetContext(ctx, []byte("down"), 1); err != nil || string(val) != "graded" {
		t.Fatalf("Get = %q, %v", val, err)
	}
}

// TestInteropAncientServer pins the fallback against a server that
// predates OpHello entirely: it answers the hello with StatusFailed
// ("unknown op") and the client must stay on v1.
func TestInteropAncientServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			frame, err := readFrame(conn)
			if err != nil {
				return
			}
			req, err := decodeRequest(frame)
			var resp []byte
			switch {
			case err != nil:
				resp = encodeResponse(StatusFailed, []byte(err.Error()))
			case req.Op == OpPing:
				resp = encodeResponse(StatusOK, []byte("pong"))
			default: // an old server knows no OpHello
				resp = encodeResponse(StatusFailed, []byte("unknown op"))
			}
			if err := writeFrame(conn, resp); err != nil {
				return
			}
		}
	}()
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if got := cl.Proto(); got != ProtoV1 {
		t.Fatalf("Proto = %d, want %d", got, ProtoV1)
	}
	if err := cl.PingContext(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestPipelinedOutOfOrder proves the client matches responses by
// sequence number, not arrival order: a scripted server answers two
// pipelined gets in reverse.
func TestPipelinedOutOfOrder(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// Hello.
		frame, _ := readFrame(conn)
		if req, err := decodeRequest(frame); err != nil || req.Op != OpHello {
			return
		}
		writeFrame(conn, encodeResponse(StatusOK, []byte{ProtoV2}))
		// Read both requests before answering either, then answer in
		// reverse with payloads echoing the requested keys.
		type pending struct {
			seq uint32
			key []byte
		}
		var reqs []pending
		for len(reqs) < 2 {
			seq, body, err := readFrameSeq(conn)
			if err != nil {
				return
			}
			req, err := decodeRequest(body)
			if err != nil {
				return
			}
			reqs = append(reqs, pending{seq: seq, key: append([]byte(nil), req.Key...)})
		}
		for i := len(reqs) - 1; i >= 0; i-- {
			writeFrameSeq(conn, reqs[i].seq, encodeResponse(StatusOK, append([]byte("val-"), reqs[i].key...)))
		}
	}()

	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Proto() != ProtoV2 {
		t.Fatalf("Proto = %d", cl.Proto())
	}
	ctx := context.Background()
	p := cl.Pipeline()
	fa := p.Get(ctx, []byte("A"), 1)
	fb := p.Get(ctx, []byte("B"), 1)
	va, err := fa.Value()
	if err != nil || string(va) != "val-A" {
		t.Fatalf("future A = %q, %v (mismatched despite reversed replies)", va, err)
	}
	vb, err := fb.Value()
	if err != nil || string(vb) != "val-B" {
		t.Fatalf("future B = %q, %v", vb, err)
	}
}

// TestPipelineEndToEnd drives many concurrent futures through the real
// server and reads everything back — the race-detector workout for the
// concurrent dispatch + response writer path.
func TestPipelineEndToEnd(t *testing.T) {
	reg := metrics.NewRegistry()
	_, cl := startServerReg(t, reg)
	ctx := context.Background()
	p := cl.Pipeline()
	const n = 200
	futures := make([]*Future, 0, n)
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("pipe-%03d", i))
		futures = append(futures, p.Put(ctx, key, 1, key, false))
	}
	if err := Wait(futures...); err != nil {
		t.Fatal(err)
	}
	gets := make([]*Future, 0, n)
	for i := 0; i < n; i++ {
		gets = append(gets, p.Get(ctx, []byte(fmt.Sprintf("pipe-%03d", i)), 1))
	}
	for i, f := range gets {
		val, err := f.Value()
		want := fmt.Sprintf("pipe-%03d", i)
		if err != nil || string(val) != want {
			t.Fatalf("get %d = %q, %v", i, val, err)
		}
	}
	// The gauge drained once every reply was delivered. Read it from
	// the registry, not OpMetrics: a wire request would count itself.
	if got := reg.Snapshot()["server.pipeline.inflight"]; got != int64(0) {
		t.Fatalf("server.pipeline.inflight = %v, want 0 after drain", got)
	}
}

// TestBatchPartialFailure verifies one bad sub-op neither fails the
// frame nor blocks its siblings, and that the per-op error keeps
// sentinel identity.
func TestBatchPartialFailure(t *testing.T) {
	reg := metrics.NewRegistry()
	_, cl := startServerReg(t, reg)
	ctx := context.Background()
	b := cl.Batcher()
	if err := b.Put(ctx, []byte("good-1"), 1, []byte("v1"), false); err != nil {
		t.Fatal(err)
	}
	// Del of a key that never existed: the engine rejects it.
	if err := b.Del(ctx, []byte("no-prior"), 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Put(ctx, []byte("good-2"), 1, []byte("v2"), false); err != nil {
		t.Fatal(err)
	}
	err := b.Flush(ctx)
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("Flush err = %v, want *BatchError", err)
	}
	if be.Ops != 3 || len(be.Failed) != 1 || be.Failed[0].Index != 1 {
		t.Fatalf("BatchError = %+v", be)
	}
	if string(be.Failed[0].Op.Key) != "no-prior" {
		t.Fatalf("failed op key = %q", be.Failed[0].Op.Key)
	}
	// Siblings landed.
	for _, k := range []string{"good-1", "good-2"} {
		if _, err := cl.GetContext(ctx, []byte(k), 1); err != nil {
			t.Fatalf("sibling %s lost: %v", k, err)
		}
	}
	// server.batch.ops counted the sub-ops.
	m, _ := cl.MetricsContext(ctx)
	if got, ok := m["server.batch.ops"].(float64); !ok || got != 3 {
		t.Fatalf("server.batch.ops = %#v", m["server.batch.ops"])
	}
}

// TestBatchSentinelAcrossWire pins errors.Is(err, core.ErrNotFound) for
// a batched delete of a missing key — the StatusError consolidation.
func TestBatchSentinelAcrossWire(t *testing.T) {
	_, cl := startServer(t)
	ctx := context.Background()
	b := cl.Batcher()
	if err := b.Del(ctx, []byte("never-existed"), 1); err != nil {
		t.Fatal(err)
	}
	err := b.Flush(ctx)
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("Flush err = %v", err)
	}
	if !errors.Is(be.Failed[0].Err, core.ErrNotFound) {
		t.Fatalf("sub-op err = %v, want core.ErrNotFound identity", be.Failed[0].Err)
	}
	// The aggregate unwraps to the first failure too.
	if !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("aggregate err = %v, want core.ErrNotFound identity", err)
	}
}

// TestBatcherAutoFlush verifies the op-count bound flushes eagerly.
func TestBatcherAutoFlush(t *testing.T) {
	_, cl := startServer(t)
	ctx := context.Background()
	b := cl.Batcher().SetLimits(8, 1<<20)
	for i := 0; i < 20; i++ {
		if err := b.Put(ctx, []byte(fmt.Sprintf("af-%02d", i)), 1, []byte("v"), false); err != nil {
			t.Fatal(err)
		}
	}
	if b.Pending() >= 8 {
		t.Fatalf("Pending = %d, auto-flush never fired", b.Pending())
	}
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	entries, _, err := cl.RangeContext(ctx, []byte("af-"), []byte("af-~"), 0)
	if err != nil || len(entries) != 20 {
		t.Fatalf("Range = %d entries, %v", len(entries), err)
	}
}

// TestStatusErrorIdentity pins the single-request error consolidation:
// engine sentinels hold across the wire, and the deprecated client
// sentinels still match.
func TestStatusErrorIdentity(t *testing.T) {
	_, cl := startServer(t)
	ctx := context.Background()
	_, err := cl.GetContext(ctx, []byte("absent"), 1)
	if !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("err = %v, want core.ErrNotFound", err)
	}
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want legacy ErrNotFound too", err)
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != StatusNotFound {
		t.Fatalf("err = %#v, want *StatusError{StatusNotFound}", err)
	}
}

// TestRangeAppliedLimit pins the limit<=0 semantics: zero asks for the
// server default and the reply reports what was applied; explicit
// limits echo back; oversized asks clamp to the cap.
func TestRangeAppliedLimit(t *testing.T) {
	s, cl := startServer(t)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if err := cl.PutContext(ctx, []byte(fmt.Sprintf("rl-%02d", i)), 1, []byte("v"), false); err != nil {
			t.Fatal(err)
		}
	}
	entries, applied, err := cl.RangeContext(ctx, nil, nil, 0)
	if err != nil || len(entries) != 10 {
		t.Fatalf("Range(0) = %d entries, %v", len(entries), err)
	}
	if applied != s.backend.rangeCap {
		t.Fatalf("applied = %d, want server default %d", applied, s.backend.rangeCap)
	}
	if _, applied, _ = cl.RangeContext(ctx, nil, nil, 7); applied != 7 {
		t.Fatalf("applied = %d, want 7", applied)
	}
	if _, applied, _ = cl.RangeContext(ctx, nil, nil, -5); applied != s.backend.rangeCap {
		t.Fatalf("negative limit applied = %d, want server default", applied)
	}
	if _, applied, _ = cl.RangeContext(ctx, nil, nil, s.backend.rangeCap+999); applied != s.backend.rangeCap {
		t.Fatalf("oversized limit applied = %d, want cap %d", applied, s.backend.rangeCap)
	}
}

// TestDeadlineExpiryMidFrame verifies a context deadline fires while a
// response is outstanding (the scripted server goes silent after the
// handshake), and that the connection heals on the next call.
func TestDeadlineExpiryMidFrame(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				frame, _ := readFrame(conn)
				if req, err := decodeRequest(frame); err != nil || req.Op != OpHello {
					return
				}
				writeFrame(conn, encodeResponse(StatusOK, []byte{ProtoV2}))
				reqs := 0
				for {
					seq, _, err := readFrameSeq(conn)
					if err != nil {
						return
					}
					reqs++
					if reqs == 1 {
						continue // swallow: the client's deadline must fire
					}
					writeFrameSeq(conn, seq, encodeResponse(StatusOK, []byte("pong")))
				}
			}(conn)
		}
	}()

	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = cl.PingContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline did not bound the wait")
	}
	// The stream stayed synced (v2 discards the late response by seq),
	// so the same connection keeps working.
	if err := cl.PingContext(context.Background()); err != nil {
		t.Fatalf("post-deadline ping: %v", err)
	}
}

// TestDialTimeoutOption verifies WithTimeout supplies a default
// deadline when the context has none.
func TestDialTimeoutOption(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		frame, _ := readFrame(conn)
		if req, err := decodeRequest(frame); err != nil || req.Op != OpHello {
			return
		}
		writeFrame(conn, encodeResponse(StatusOK, []byte{ProtoV2}))
		// Then never answer anything again.
		for {
			if _, _, err := readFrameSeq(conn); err != nil {
				return
			}
		}
	}()
	cl, err := Dial(ln.Addr().String(), WithTimeout(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	start := time.Now()
	err = cl.PingContext(context.Background())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded from WithTimeout", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("WithTimeout did not bound the wait")
	}
}

// TestPoolSpreadsConnections verifies WithPoolSize dials distinct
// connections and the server sees them all.
func TestPoolSpreadsConnections(t *testing.T) {
	s, _ := startServer(t)
	cl, err := Dial(s.Addr().String(), WithPoolSize(3))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := []byte(fmt.Sprintf("pool-%02d", i))
			if err := cl.PutContext(ctx, key, 1, key, false); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	st, err := cl.StatsContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Conns < 4 { // 3 pooled + the startServer client
		t.Fatalf("Conns = %d, want >= 4", st.Conns)
	}
}

// TestMaxInFlightBackpressure floods one connection far past its window
// and verifies everything still completes exactly once.
func TestMaxInFlightBackpressure(t *testing.T) {
	s, _ := startServer(t)
	s.SetMaxInFlight(4)
	cl, err := Dial(s.Addr().String(), WithMaxInFlight(4))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	p := cl.Pipeline()
	const n = 100
	futures := make([]*Future, 0, n)
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("bp-%03d", i))
		futures = append(futures, p.Put(ctx, key, 1, key, false))
	}
	if err := Wait(futures...); err != nil {
		t.Fatal(err)
	}
	entries, _, err := cl.RangeContext(ctx, []byte("bp-"), []byte("bp-~"), 0)
	if err != nil || len(entries) != n {
		t.Fatalf("Range = %d entries, %v", len(entries), err)
	}
}

// TestV2FrameCodec round-trips the seq framing and rejects runts.
func TestV2FrameCodec(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrameSeq(&buf, 42, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	seq, body, err := readFrameSeq(&buf)
	if err != nil || seq != 42 || string(body) != "hello" {
		t.Fatalf("round trip = %d, %q, %v", seq, body, err)
	}
	// A v2 frame shorter than its own seq field is malformed.
	var runt bytes.Buffer
	hdr := binary.LittleEndian.AppendUint32(nil, 2)
	runt.Write(hdr)
	runt.Write([]byte{0, 0})
	if _, _, err := readFrameSeq(&runt); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("runt err = %v", err)
	}
}

// TestBatchCodec round-trips batch bodies and replies, and rejects
// count mismatches and non-batchable ops.
func TestBatchCodec(t *testing.T) {
	ops := []BatchOp{
		{Op: OpPut, Version: 3, Key: []byte("a"), Value: []byte("va")},
		{Op: OpPutDedup, Version: 4, Key: []byte("b")},
		{Op: OpDel, Version: 3, Key: []byte("c")},
		{Op: OpDropVersion, Version: 1},
	}
	packed, err := encodeBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := decodeBatch(packed, len(ops))
	if err != nil {
		t.Fatal(err)
	}
	for i, req := range decoded {
		if req.Op != ops[i].Op || req.Version != ops[i].Version ||
			!bytes.Equal(req.Key, ops[i].Key) || !bytes.Equal(req.Value, ops[i].Value) {
			t.Fatalf("sub-op %d = %+v, want %+v", i, req, ops[i])
		}
	}
	if _, err := decodeBatch(packed, len(ops)+1); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("count mismatch err = %v", err)
	}
	if _, err := encodeBatch([]BatchOp{{Op: OpGet, Key: []byte("x")}}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("non-batchable err = %v", err)
	}
	reply := encodeBatchReply([]subStatus{
		{status: StatusOK},
		{status: StatusNotFound, msg: []byte("missing")},
	})
	statuses, err := decodeBatchReply(reply)
	if err != nil || len(statuses) != 2 {
		t.Fatalf("reply = %+v, %v", statuses, err)
	}
	if statuses[1].status != StatusNotFound || string(statuses[1].msg) != "missing" {
		t.Fatalf("reply[1] = %+v", statuses[1])
	}
}

// TestDeprecatedWrappersStillWork exercises the context-free surface
// end to end (the DialNode facade compatibility contract).
func TestDeprecatedWrappersStillWork(t *testing.T) {
	_, cl := startServer(t)
	if err := cl.Put([]byte("w"), 1, []byte("x"), false); err != nil {
		t.Fatal(err)
	}
	if val, err := cl.Get([]byte("w"), 1); err != nil || string(val) != "x" {
		t.Fatalf("Get = %q, %v", val, err)
	}
	if ok, err := cl.Has([]byte("w"), 1); err != nil || !ok {
		t.Fatalf("Has = %v, %v", ok, err)
	}
	if entries, err := cl.Range(nil, nil, 0); err != nil || len(entries) != 1 {
		t.Fatalf("Range = %d, %v", len(entries), err)
	}
	if err := cl.Del([]byte("w"), 1); err != nil {
		t.Fatal(err)
	}
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
}
