package server

import (
	"context"
	"time"
)

// RemoteEngine adapts a Client to the storage-engine interface Mint
// expects (mint.Engine, satisfied structurally), so a Mint group can be
// assembled from storage nodes reached over real TCP instead of
// in-process engines. Dial the client with WithPoolSize to let Mint's
// concurrent replica writes fan out over several connections. Device
// costs are incurred server-side and are not visible over this
// protocol, so the reported durations are zero; the wire itself is
// real.
//
// Errors come back as *StatusError, which errors.Is maps onto the
// engine sentinels — errors.Is(err, core.ErrNotFound) behaves
// identically for local and remote engines with no translation layer.
type RemoteEngine struct {
	c *Client
}

// NewRemoteEngine wraps a connected client.
func NewRemoteEngine(c *Client) *RemoteEngine { return &RemoteEngine{c: c} }

// Client exposes the underlying client (e.g. to build a Batcher for
// bulk loads onto this node).
func (r *RemoteEngine) Client() *Client { return r.c }

// Put stores (key, version) on the remote node.
func (r *RemoteEngine) Put(key []byte, version uint64, value []byte, dedup bool) (time.Duration, error) {
	return 0, r.c.PutContext(context.Background(), key, version, value, dedup)
}

// Get fetches (key, version) from the remote node.
func (r *RemoteEngine) Get(key []byte, version uint64) ([]byte, time.Duration, error) {
	val, err := r.c.GetContext(context.Background(), key, version)
	return val, 0, err
}

// Del deletes (key, version) on the remote node.
func (r *RemoteEngine) Del(key []byte, version uint64) (time.Duration, error) {
	return 0, r.c.DelContext(context.Background(), key, version)
}

// DropVersion retires a version on the remote node. The protocol does
// not return the dropped count, so it reports zero.
func (r *RemoteEngine) DropVersion(version uint64) (int, time.Duration, error) {
	return 0, 0, r.c.DropVersionContext(context.Background(), version)
}

// Has probes (key, version) on the remote node.
func (r *RemoteEngine) Has(key []byte, version uint64) bool {
	ok, err := r.c.HasContext(context.Background(), key, version)
	return err == nil && ok
}

// Close tears down the connection (the remote engine itself stays up).
func (r *RemoteEngine) Close() error { return r.c.Close() }
