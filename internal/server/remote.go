package server

import (
	"errors"
	"time"

	"directload/internal/core"
)

// RemoteEngine adapts a Client to the storage-engine interface Mint
// expects (mint.Engine, satisfied structurally), so a Mint group can be
// assembled from storage nodes reached over real TCP instead of
// in-process engines. Device costs are incurred server-side and are not
// visible over this protocol, so the reported durations are zero; the
// wire itself is real.
type RemoteEngine struct {
	c *Client
}

// NewRemoteEngine wraps a connected client.
func NewRemoteEngine(c *Client) *RemoteEngine { return &RemoteEngine{c: c} }

// Put stores (key, version) on the remote node.
func (r *RemoteEngine) Put(key []byte, version uint64, value []byte, dedup bool) (time.Duration, error) {
	return 0, translate(r.c.Put(key, version, value, dedup))
}

// Get fetches (key, version) from the remote node.
func (r *RemoteEngine) Get(key []byte, version uint64) ([]byte, time.Duration, error) {
	val, err := r.c.Get(key, version)
	return val, 0, translate(err)
}

// Del deletes (key, version) on the remote node.
func (r *RemoteEngine) Del(key []byte, version uint64) (time.Duration, error) {
	return 0, translate(r.c.Del(key, version))
}

// DropVersion retires a version on the remote node. The protocol does
// not return the dropped count, so it reports zero.
func (r *RemoteEngine) DropVersion(version uint64) (int, time.Duration, error) {
	return 0, 0, translate(r.c.DropVersion(version))
}

// Has probes (key, version) on the remote node.
func (r *RemoteEngine) Has(key []byte, version uint64) bool {
	ok, err := r.c.Has(key, version)
	return err == nil && ok
}

// Close tears down the connection (the remote engine itself stays up).
func (r *RemoteEngine) Close() error { return r.c.Close() }

// translate maps wire sentinels back onto the engine's error space so
// errors.Is checks behave identically for local and remote engines.
func translate(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrNotFound):
		return core.ErrNotFound
	case errors.Is(err, ErrDeleted):
		return core.ErrDeleted
	default:
		return err
	}
}
