package server

import (
	"context"
	"fmt"
	"net"
	"testing"

	"directload/internal/aof"
	"directload/internal/blockfs"
	"directload/internal/core"
	"directload/internal/metrics"
	"directload/internal/ssd"
)

// benchNode starts a server over a fresh engine for benchmarking.
func benchNode(b *testing.B) string {
	b.Helper()
	dev, err := ssd.NewDevice(ssd.DefaultConfig(1 << 30))
	if err != nil {
		b.Fatal(err)
	}
	db, err := core.Open(blockfs.NewNativeFS(dev), core.Options{
		AOF: aof.Config{FileSize: 16 << 20, GCThreshold: 0.25}, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	s := New(db)
	s.SetLogf(nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go s.Serve(ln)
	b.Cleanup(func() {
		s.Close()
		db.Close()
	})
	return ln.Addr().String()
}

// publishEntries is one version's worth of records — the 10k-entry
// remote version publish the acceptance bar measures.
const publishEntries = 10000

func benchKV(version uint64, i int) ([]byte, []byte) {
	return []byte(fmt.Sprintf("bench/%05d", i)),
		[]byte(fmt.Sprintf("payload-%d-%05d-0123456789abcdef", version, i))
}

// BenchmarkRemotePublish compares publishing a 10k-entry version over
// the wire three ways: one blocking round trip per record (the v1
// behavior), pipelined individual puts, and OpBatch frames. The per-op
// figure to compare is ns/op divided by publishEntries.
func BenchmarkRemotePublish(b *testing.B) {
	b.Run("naive", func(b *testing.B) {
		addr := benchNode(b)
		cl, err := Dial(addr, WithMaxProtocol(ProtoV1))
		if err != nil {
			b.Fatal(err)
		}
		defer cl.Close()
		ctx := context.Background()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			version := uint64(n + 1)
			for i := 0; i < publishEntries; i++ {
				key, val := benchKV(version, i)
				if err := cl.PutContext(ctx, key, version, val, false); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(publishEntries*b.N)/b.Elapsed().Seconds(), "puts/s")
	})
	b.Run("pipelined", func(b *testing.B) {
		addr := benchNode(b)
		cl, err := Dial(addr, WithMaxInFlight(256))
		if err != nil {
			b.Fatal(err)
		}
		defer cl.Close()
		ctx := context.Background()
		p := cl.Pipeline()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			version := uint64(n + 1)
			futures := make([]*Future, 0, publishEntries)
			for i := 0; i < publishEntries; i++ {
				key, val := benchKV(version, i)
				futures = append(futures, p.Put(ctx, key, version, val, false))
			}
			if err := Wait(futures...); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(publishEntries*b.N)/b.Elapsed().Seconds(), "puts/s")
	})
	b.Run("batched", func(b *testing.B) {
		addr := benchNode(b)
		cl, err := Dial(addr)
		if err != nil {
			b.Fatal(err)
		}
		defer cl.Close()
		ctx := context.Background()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			version := uint64(n + 1)
			batch := cl.Batcher()
			for i := 0; i < publishEntries; i++ {
				key, val := benchKV(version, i)
				if err := batch.Put(ctx, key, version, val, false); err != nil {
					b.Fatal(err)
				}
			}
			if err := batch.Flush(ctx); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(publishEntries*b.N)/b.Elapsed().Seconds(), "puts/s")
	})
}

// benchBackend builds a bare Backend (no listener) over a fresh engine,
// instrumented with a registry — the baseline every attribution figure
// is compared against.
func benchBackend(b *testing.B) *Backend {
	b.Helper()
	dev, err := ssd.NewDevice(ssd.DefaultConfig(1 << 30))
	if err != nil {
		b.Fatal(err)
	}
	db, err := core.Open(blockfs.NewNativeFS(dev), core.Options{
		AOF: aof.Config{FileSize: 16 << 20, GCThreshold: 0.25}, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	bk := NewBackend(db)
	bk.SetMetrics(metrics.NewRegistry())
	return bk
}

func benchBackendPut20KB(b *testing.B, attrEvery int) {
	bk := benchBackend(b)
	bk.SetAttribution(attrEvery)
	ctx := context.Background()
	val := make([]byte, 20<<10)
	b.SetBytes(int64(len(val)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := []byte(fmt.Sprintf("key-%08d", i))
		if err := bk.Put(ctx, key, 1, val, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPut20KBBackend is the Backend twin of the engine-level
// BenchmarkPut20KBInstrumented: one instrumented put through the shared
// execution path, no wire.
func BenchmarkPut20KBBackend(b *testing.B) { benchBackendPut20KB(b, 0) }

// BenchmarkPut20KBAttributed is BenchmarkPut20KBBackend with 1/64
// resource attribution sampling enabled — the delta between the two is
// the price of continuous attribution, guarded below 3% by
// TestAttributionOverheadPut20KB.
func BenchmarkPut20KBAttributed(b *testing.B) { benchBackendPut20KB(b, 64) }
