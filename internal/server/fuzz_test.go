package server

import (
	"bytes"
	"encoding/binary"
	"testing"

	"directload/internal/metrics"
)

// fuzzFrameCap rejects inputs whose declared frame length exceeds what
// any fuzz input can actually carry, so the fuzzer's budget is not
// spent allocating maxFrame-sized buffers that io.ReadFull immediately
// fails to fill.
const fuzzFrameCap = 1 << 20

// FuzzFrameV1 drives arbitrary bytes through the v1 frame reader and
// round-trips every frame it accepts.
func FuzzFrameV1(f *testing.F) {
	good, err := encodeRequest(request{Op: OpPut, Version: 7, Key: []byte("k"), Value: []byte("v")})
	if err != nil {
		f.Fatal(err)
	}
	var seed bytes.Buffer
	if err := writeFrame(&seed, good); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) >= 4 && binary.LittleEndian.Uint32(data) > fuzzFrameCap {
			return
		}
		payload, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := writeFrame(&out, payload); err != nil {
			t.Fatalf("re-encoding an accepted frame failed: %v", err)
		}
		back, err := readFrame(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if !bytes.Equal(back, payload) {
			t.Fatalf("round-trip payload mismatch: %d vs %d bytes", len(back), len(payload))
		}
	})
}

// FuzzRequest drives arbitrary bytes through the request body parser
// and re-encodes whatever it accepts.
func FuzzRequest(f *testing.F) {
	for _, req := range []request{
		{Op: OpGet, Version: 3, Key: []byte("key")},
		{Op: OpPut, Version: 1, Key: []byte("k"), Value: []byte("some value")},
		{Op: OpPing},
	} {
		seed, err := encodeRequest(req)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeRequest(data)
		if err != nil {
			return
		}
		enc, err := encodeRequest(req)
		if err != nil {
			t.Fatalf("re-encoding a decoded request failed: %v", err)
		}
		back, err := decodeRequest(enc)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if back.Op != req.Op || back.Version != req.Version ||
			!bytes.Equal(back.Key, req.Key) || !bytes.Equal(back.Value, req.Value) {
			t.Fatalf("round-trip request mismatch: %+v vs %+v", back, req)
		}
	})
}

// FuzzFrameV2 parses arbitrary bytes the way the v2 server read loop
// does: seq-framed, optionally trace-tagged, optionally a batch of
// packed sub-ops.
func FuzzFrameV2(f *testing.F) {
	plain, err := encodeRequest(request{Op: OpPut, Version: 5, Key: []byte("k"), Value: []byte("v")})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(appendFrameSeq(nil, 1, plain))

	packed, err := encodeBatch([]BatchOp{
		{Op: OpPut, Version: 2, Key: []byte("a"), Value: []byte("x")},
		{Op: OpDel, Version: 2, Key: []byte("b")},
	})
	if err != nil {
		f.Fatal(err)
	}
	batch, err := encodeRequest(request{Op: OpBatch, Version: 2, Value: packed})
	if err != nil {
		f.Fatal(err)
	}
	sc := metrics.SpanContext{TraceID: 9, SpanID: 8}
	f.Add(appendFrameSeqTrace(nil, 3|seqTraceFlag, sc, batch))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) >= 4 && binary.LittleEndian.Uint32(data) > fuzzFrameCap {
			return
		}
		seq, body, err := readFrameSeq(bytes.NewReader(data))
		if err != nil {
			return
		}
		if seq&seqTraceFlag != 0 {
			if _, rest, err := splitTraceHeader(body); err == nil {
				body = rest
			} else {
				return
			}
		}
		req, err := decodeRequest(body)
		if err != nil {
			return
		}
		if req.Op == OpBatch {
			subs, err := decodeBatch(req.Value, int(req.Version))
			if err != nil {
				return
			}
			for _, sub := range subs {
				enc, err := encodeRequest(sub)
				if err != nil {
					t.Fatalf("re-encoding decoded sub-op failed: %v", err)
				}
				back, err := decodeRequest(enc)
				if err != nil {
					t.Fatalf("sub-op round trip failed: %v", err)
				}
				if back.Op != sub.Op || !bytes.Equal(back.Key, sub.Key) {
					t.Fatalf("sub-op round-trip mismatch")
				}
			}
		}
		enc, err := encodeRequest(req)
		if err != nil {
			t.Fatalf("re-encoding a decoded request failed: %v", err)
		}
		if _, err := decodeRequest(enc); err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
	})
}
