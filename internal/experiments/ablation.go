package experiments

import (
	"errors"
	"time"

	"directload/internal/aof"
	"directload/internal/blockfs"
	"directload/internal/core"
	"directload/internal/lsm"
	"directload/internal/metrics"
	"directload/internal/mint"
	"directload/internal/ssd"
	"directload/internal/workload"
)

// The ablations quantify the design choices DESIGN.md §5 calls out and
// the §5 RUM-conjecture discussion: lazy GC trades storage space (M) for
// write throughput (U); block-aligned native flash removes the hardware
// write amplification a page-mapped FTL would re-introduce; recovery
// time is the cost of keeping the index only in memory.

// RUMPoint is one cell of the RUM trade-off table: a GC threshold and
// the read/update/memory costs measured under it.
type RUMPoint struct {
	GCThreshold  float64
	WriteAmp     float64 // U: device writes per user byte
	ReadMeanUs   float64 // R: mean GET device time, microseconds
	DiskGB       float64 // M: flash occupied at the end
	GCRuns       int64
	RecoveryTime time.Duration // full AOF scan estimate
}

// RunRUMAblation sweeps the lazy-GC occupancy threshold on QinDB under
// the Fig. 5 churn workload, then measures read cost and recovery scan
// time. Higher thresholds collect more eagerly: less disk, more
// re-append write amplification.
func RunRUMAblation(cfg Fig5Config, thresholds []float64) ([]RUMPoint, error) {
	if cfg.Keys == 0 {
		cfg = DefaultFig5Config()
	}
	if len(thresholds) == 0 {
		thresholds = []float64{0.10, 0.25, 0.50, 0.75}
	}
	var out []RUMPoint
	for _, th := range thresholds {
		p, err := runRUMPoint(cfg, th)
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
	return out, nil
}

func runRUMPoint(cfg Fig5Config, threshold float64) (RUMPoint, error) {
	p := RUMPoint{GCThreshold: threshold}
	dev, err := ssd.NewDevice(ssd.DefaultConfig(cfg.DeviceCapacity))
	if err != nil {
		return p, err
	}
	fs := blockfs.NewNativeFS(dev)
	opts := core.DefaultOptions()
	opts.AOF = aof.Config{FileSize: 16 << 20, GCThreshold: threshold}
	opts.Seed = cfg.Seed
	db, err := core.Open(fs, opts)
	if err != nil {
		return p, err
	}
	defer db.Close()

	gen, err := workload.NewGenerator(workload.KVConfig{
		Keys: cfg.Keys, ValueSize: cfg.ValueSize,
		ValueSizeStdDev: cfg.ValueSize / 8, Seed: cfg.Seed,
	})
	if err != nil {
		return p, err
	}
	var userBytes int64
	for v := 1; v <= cfg.Versions; v++ {
		err := gen.NextVersion(func(e workload.Entry) error {
			_, err := db.Put(e.Key, e.Version, e.Value, false)
			userBytes += int64(len(e.Key) + len(e.Value))
			return err
		})
		if err != nil {
			return p, err
		}
		if v > cfg.Retain {
			if _, _, err := db.DropVersion(uint64(v - cfg.Retain)); err != nil {
				return p, err
			}
		}
	}
	// R: read every live key once at the newest version.
	hist := metrics.NewHistogram(0)
	last := uint64(cfg.Versions)
	for i := 0; i < cfg.Keys; i++ {
		_, cost, err := db.Get(gen.Key(i), last)
		if err != nil {
			return p, err
		}
		hist.Observe(float64(cost.Microseconds()))
	}
	st := dev.Stats()
	p.WriteAmp = st.WriteAmplification(userBytes)
	p.ReadMeanUs = hist.Mean()
	p.DiskGB = float64(fs.UsedBytes()) / (1 << 30)
	p.GCRuns = db.Stats().Store.GCRuns
	// Recovery: the scan reads every flash byte the store occupies.
	lat := dev.Config().Latency
	pages := fs.UsedBytes() / int64(dev.Config().PageSize)
	p.RecoveryTime = time.Duration(pages) * lat.PageRead / time.Duration(lat.Channels)
	return p, nil
}

// InterfaceResult compares one engine on native (block-aligned) flash vs
// the same engine forced through a conventional page-mapped FTL —
// isolating the hardware-level write amplification of paper §2.3. The
// native run's device writes are the engine's logical write volume, so
// HWWriteAmp = ftl device writes / native device writes for the same
// engine and workload.
type InterfaceResult struct {
	Engine        string // "QinDB" or "LevelDB"
	Interface     string // "native" or "ftl"
	SysWriteBytes int64
	UserBytes     int64
	WriteAmp      float64 // device writes / user bytes
	Migrations    int64   // FTL valid-page migrations (0 for native)
	Erases        int64
}

// RunInterfaceAblation runs the churn workload on both engines and both
// flash interfaces (four cells) over realistically full devices.
func RunInterfaceAblation(cfg Fig5Config) ([]InterfaceResult, error) {
	if cfg.Keys == 0 {
		cfg = DefaultFig5Config()
	}
	var out []InterfaceResult
	for _, kind := range []EngineKind{QinDB, LevelDB} {
		for _, native := range []bool{true, false} {
			r, err := runInterfacePoint(cfg, kind, native)
			if err != nil {
				return out, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}

func runInterfacePoint(cfg Fig5Config, kind EngineKind, native bool) (InterfaceResult, error) {
	res := InterfaceResult{Engine: kind.String(), Interface: "native"}
	// Hardware write amplification only manifests when the device runs
	// near capacity (real deployments run SSDs full) and when erase
	// blocks hold data with different death times. Size the flash to the
	// engine's working set: QinDB holds ~5 versions plus lazy-GC slack;
	// the LSM tree holds transient copies across levels.
	steady := int64(cfg.Retain+1) * int64(cfg.Keys) * int64(cfg.ValueSize)
	capacity := steady + steady/2
	if kind == LevelDB {
		capacity = steady * 4
	}
	dev, err := ssd.NewDevice(ssd.DefaultConfig(capacity))
	if err != nil {
		return res, err
	}
	var fs blockfs.FS
	var ftl *ssd.FTL
	if native {
		fs = blockfs.NewNativeFS(dev)
	} else {
		res.Interface = "ftl"
		geo := dev.Config()
		ftl, err = ssd.NewFTL(dev, (geo.Blocks-6)*geo.PagesPerBlock)
		if err != nil {
			return res, err
		}
		fs = blockfs.NewFTLFS(ftl)
	}
	var engine mint.Engine
	switch kind {
	case QinDB:
		opts := core.DefaultOptions()
		opts.AOF = aof.Config{
			FileSize:     512 << 10, // two erase blocks: boundary sharing is common
			GCThreshold:  0.25,
			MinFreeBytes: capacity / 4, // pressure override keeps a full disk usable
		}
		opts.Seed = cfg.Seed
		db, err := core.Open(fs, opts)
		if err != nil {
			return res, err
		}
		engine = db
	case LevelDB:
		opts := lsm.Options{
			MemtableSize:        512 << 10,
			L0CompactionTrigger: 4,
			L1MaxBytes:          1280 << 10,
			LevelMultiplier:     10,
			TargetFileSize:      256 << 10,
			MaxLevels:           7,
			Seed:                cfg.Seed,
		}
		db, err := lsm.Open(fs, opts)
		if err != nil {
			return res, err
		}
		engine = db
	}
	defer engine.Close()

	gen, err := workload.NewGenerator(workload.KVConfig{
		Keys: cfg.Keys, ValueSize: cfg.ValueSize,
		ValueSizeStdDev: cfg.ValueSize / 8, Seed: cfg.Seed,
	})
	if err != nil {
		return res, err
	}
	for v := 1; v <= cfg.Versions; v++ {
		err := gen.NextVersion(func(e workload.Entry) error {
			_, err := engine.Put(e.Key, e.Version, e.Value, false)
			res.UserBytes += int64(len(e.Key) + len(e.Value))
			return err
		})
		if err != nil {
			return res, err
		}
		if v > cfg.Retain {
			if _, _, err := engine.DropVersion(uint64(v - cfg.Retain)); err != nil {
				return res, err
			}
		}
	}
	st := dev.Stats()
	res.SysWriteBytes = st.SysWriteBytes
	res.WriteAmp = st.WriteAmplification(res.UserBytes)
	res.Erases = st.Erases
	if ftl != nil {
		res.Migrations = ftl.Stats().MigratedPages
	}
	return res, nil
}

// TracebackPoint measures GET cost as the dedup chain deepens (DESIGN.md
// ablation 3): the fraction of versions that were deduplicated rises and
// with it the number of deduplicated hops a read must resolve.
type TracebackPoint struct {
	DupRatio   float64
	ReadMeanUs float64
	Tracebacks int64
}

// RunTracebackAblation sweeps the duplicate ratio.
func RunTracebackAblation(keys, valueSize, versions int, ratios []float64, seed int64) ([]TracebackPoint, error) {
	if len(ratios) == 0 {
		ratios = []float64{0, 0.3, 0.6, 0.9}
	}
	var out []TracebackPoint
	for _, ratio := range ratios {
		db, err := core.Open(newNativeFS(1<<30), core.DefaultOptions())
		if err != nil {
			return out, err
		}
		gen, err := workload.NewGenerator(workload.KVConfig{
			Keys: keys, ValueSize: valueSize, DupRatio: ratio, Seed: seed,
		})
		if err != nil {
			return out, errors.Join(err, db.Close())
		}
		for v := 1; v <= versions; v++ {
			err := gen.NextVersion(func(e workload.Entry) error {
				_, err := db.Put(e.Key, e.Version, e.Value, e.Dup)
				return err
			})
			if err != nil {
				return out, errors.Join(err, db.Close())
			}
		}
		hist := metrics.NewHistogram(0)
		for i := 0; i < keys; i++ {
			_, cost, err := db.Get(gen.Key(i), uint64(versions))
			if err != nil {
				return out, errors.Join(err, db.Close())
			}
			hist.Observe(float64(cost.Microseconds()))
		}
		out = append(out, TracebackPoint{
			DupRatio:   ratio,
			ReadMeanUs: hist.Mean(),
			Tracebacks: db.Stats().Tracebacks,
		})
		if err := db.Close(); err != nil {
			return out, err
		}
	}
	return out, nil
}

func newNativeFS(capacity int64) blockfs.FS {
	dev, err := ssd.NewDevice(ssd.DefaultConfig(capacity))
	if err != nil {
		panic(err) // static geometry cannot fail
	}
	return blockfs.NewNativeFS(dev)
}
