package experiments

import (
	"math/rand"
	"time"

	"directload/internal/aof"
	"directload/internal/bifrost"
	"directload/internal/cluster"
	"directload/internal/core"
	"directload/internal/lsm"
	"directload/internal/mint"
	"directload/internal/workload"
)

// MonthConfig shapes the month-long cross-region trace replay behind
// Figs. 9 and 10: 30 days, 10 version builds, per-day redundancy
// wandering between DupLo and DupHi.
type MonthConfig struct {
	Keys      int
	ValueSize int
	DupLo     float64 // redundancy range across the month (Fig. 9's
	DupHi     float64 // ratio wanders between ~23% and ~80%)
	// WithDirectLoad selects the full system (dedup + QinDB); false runs
	// the baseline (no dedup + LevelDB nodes) of Fig. 10a.
	WithDirectLoad bool
	// CorruptProb injects per-hop corruption (Fig. 10b failure model).
	CorruptProb float64
	// LinkFailProb is the per-version probability that a random
	// relay→DC link fails mid-transfer and recovers minutes later; the
	// slow repair path produces the late deliveries behind Fig. 10b.
	LinkFailProb float64
	// MissDeadline is the lateness threshold (the paper uses one hour
	// on GB-scale slices; the default scales it to this trace).
	MissDeadline time.Duration
	// LinkBandwidth scales the fabric (bytes/sec per link).
	LinkBandwidth float64
	Seed          int64
}

// DefaultMonthConfig returns the laptop-scale month replay.
func DefaultMonthConfig() MonthConfig {
	return MonthConfig{
		Keys:           300,
		ValueSize:      16 << 10,
		DupLo:          0.30,
		DupHi:          0.90,
		WithDirectLoad: true,
		CorruptProb:    0.08,
		LinkFailProb:   0.1,
		MissDeadline:   90 * time.Second,
		LinkBandwidth:  1e6,
		Seed:           1,
	}
}

// DayResult is one day of the Fig. 9 / Fig. 10 series.
type DayResult struct {
	Day           int
	DedupRatio    float64 // fraction of bytes elided (0 when disabled)
	UpdateMinutes float64 // effective update time (network ∪ storage)
	ThroughputKps float64 // 10^3 keys/sec loaded, Fig. 10a's unit
	MissRatio     float64 // cumulative, Fig. 10b
	// Repairs counts slow repair-process activations during this
	// version — the "other factors" the paper says cause update-time
	// fluctuations unrelated to the dedup ratio.
	Repairs int64
}

// MonthSummary aggregates a month run.
type MonthSummary struct {
	System        string // "DirectLoad" or "baseline"
	Versions      int
	MeanUpdateMin float64
	MeanKps       float64
	MeanDedup     float64
	MissRatio     float64
	WireBytes     int64
	PayloadBytes  int64
}

// monthSystemConfig assembles the cluster for a month run.
func monthSystemConfig(cfg MonthConfig) cluster.Config {
	top := bifrost.TopologyConfig{
		RegionNames:       []string{"north", "east", "south"},
		RelaysPerRegion:   4,
		DCsPerRegion:      2,
		BuilderUplink:     cfg.LinkBandwidth,
		BackboneBandwidth: cfg.LinkBandwidth,
		RegionalBandwidth: cfg.LinkBandwidth,
		ReserveStreams:    true,
		MonitorInterval:   time.Second,
	}
	m := mint.Config{
		Groups:        2,
		NodesPerGroup: 3,
		Replicas:      3,
		NodeCapacity:  512 << 20,
	}
	if cfg.WithDirectLoad {
		opts := core.DefaultOptions()
		opts.AOF = aof.Config{FileSize: 8 << 20, GCThreshold: 0.25}
		m.Factory = mint.QinDBFactory(opts)
	} else {
		m.Factory = mint.LSMFactory(lsm.DefaultOptions())
	}
	return cluster.Config{
		Topology:       top,
		Mint:           m,
		SliceLimit:     256 << 10,
		RetainVersions: 4,
		DedupEnabled:   cfg.WithDirectLoad,
		CorruptProb:    cfg.CorruptProb,
		Seed:           cfg.Seed,
	}
}

// RunMonth replays the month-long trace through the full system and
// returns the per-day series plus a summary.
func RunMonth(cfg MonthConfig) ([]DayResult, MonthSummary, error) {
	if cfg.Keys == 0 {
		cfg = DefaultMonthConfig()
	}
	name := "DirectLoad"
	if !cfg.WithDirectLoad {
		name = "baseline"
	}
	sum := MonthSummary{System: name}

	sys, err := cluster.New(monthSystemConfig(cfg))
	if err != nil {
		return nil, sum, err
	}
	defer sys.Close()
	if cfg.MissDeadline > 0 {
		sys.Shipper.Deadline = cfg.MissDeadline
	}
	// With a bounded fast-retransmit budget, a rare burst of consecutive
	// corruptions falls through to the slow repair process and arrives
	// past the deadline — the tail behind the paper's 0.24% miss ratio.
	sys.Shipper.MaxRetries = 2
	failRng := rand.New(rand.NewSource(cfg.Seed + 17))

	gen, err := workload.NewGenerator(workload.KVConfig{
		Keys:            cfg.Keys,
		ValueSize:       cfg.ValueSize,
		ValueSizeStdDev: cfg.ValueSize / 8,
		DupRatio:        0, // per-day ratio supplied explicitly below
		Seed:            cfg.Seed,
	})
	if err != nil {
		return nil, sum, err
	}

	days := workload.MonthProfile(cfg.DupLo, cfg.DupHi, cfg.Seed+5)
	var out []DayResult
	version := uint64(0)
	for _, day := range days {
		if !day.NewVersion {
			continue
		}
		version++
		// Failure injection: occasionally a relay→DC link drops during
		// the transfer and recovers minutes later; deliveries that go
		// through the repair path arrive past the deadline.
		if cfg.LinkFailProb > 0 && failRng.Float64() < cfg.LinkFailProb {
			region := sys.Top.Regions[failRng.Intn(len(sys.Top.Regions))]
			relay := region.Relays[failRng.Intn(len(region.Relays))]
			dc := region.DCs[failRng.Intn(len(region.DCs))]
			downFor := time.Duration(10+failRng.Intn(10)) * time.Second
			sys.Top.Net.After(time.Second, func(now time.Duration) {
				sys.Top.Net.SetLinkDown(relay, dc, true)
			})
			sys.Top.Net.After(time.Second+downFor, func(now time.Duration) {
				sys.Top.Net.SetLinkDown(relay, dc, false)
			})
		}
		var entries []cluster.Entry
		err := gen.NextVersionRatio(day.DupRatio, func(e workload.Entry) error {
			stream := bifrost.StreamInverted
			if len(entries)%3 == 0 { // a third of the volume is summary data
				stream = bifrost.StreamSummary
			}
			entries = append(entries, cluster.Entry{Key: e.Key, Value: e.Value, Stream: stream})
			return nil
		})
		if err != nil {
			return out, sum, err
		}
		repairsBefore := sys.Shipper.Stats().Repairs
		rep, err := sys.PublishVersion(version, entries)
		if err != nil {
			return out, sum, err
		}
		eff := rep.EffectiveTime()
		dr := DayResult{
			Day:           day.Day,
			DedupRatio:    rep.Dedup.ByteRatio(),
			UpdateMinutes: eff.Minutes(),
			MissRatio:     sys.Shipper.MissRatio(),
			Repairs:       sys.Shipper.Stats().Repairs - repairsBefore,
		}
		if eff > 0 {
			dr.ThroughputKps = float64(rep.Keys) / eff.Seconds() / 1e3
		}
		out = append(out, dr)
		sum.WireBytes += rep.WireBytes
		sum.PayloadBytes += rep.PayloadBytes
		sum.MeanUpdateMin += dr.UpdateMinutes
		sum.MeanKps += dr.ThroughputKps
		sum.MeanDedup += dr.DedupRatio
		sum.Versions++
	}
	if sum.Versions > 0 {
		sum.MeanUpdateMin /= float64(sum.Versions)
		sum.MeanKps /= float64(sum.Versions)
		sum.MeanDedup /= float64(sum.Versions)
	}
	sum.MissRatio = sys.Shipper.MissRatio()
	return out, sum, nil
}

// MonthPair runs the with/without comparison of Fig. 10a.
func MonthPair(cfg MonthConfig) (with, without MonthSummary, withDays, withoutDays []DayResult, err error) {
	c := cfg
	c.WithDirectLoad = true
	withDays, with, err = RunMonth(c)
	if err != nil {
		return
	}
	c.WithDirectLoad = false
	withoutDays, without, err = RunMonth(c)
	return
}

// PairwiseSpeedup compares the two systems day by day on days where
// neither run went through the slow repair path, returning the mean and
// peak throughput improvement — the paper's "up to 5x" is the peak.
func PairwiseSpeedup(withDays, withoutDays []DayResult) (mean, peak float64, cleanDays int) {
	n := len(withDays)
	if len(withoutDays) < n {
		n = len(withoutDays)
	}
	var sum float64
	for i := 0; i < n; i++ {
		w, wo := withDays[i], withoutDays[i]
		if w.Repairs > 0 || wo.Repairs > 0 || wo.ThroughputKps == 0 {
			continue
		}
		s := w.ThroughputKps / wo.ThroughputKps
		sum += s
		if s > peak {
			peak = s
		}
		cleanDays++
	}
	if cleanDays > 0 {
		mean = sum / float64(cleanDays)
	}
	return mean, peak, cleanDays
}
