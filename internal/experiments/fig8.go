package experiments

import (
	"errors"
	"fmt"

	"directload/internal/core"
	"directload/internal/lsm"
	"directload/internal/metrics"
	"directload/internal/workload"
)

// Fig8Config shapes the read-latency experiment (paper §4.1.3): Zipf
// reads against a store loaded with several versions, measured with and
// without a concurrent updating stream.
type Fig8Config struct {
	Keys           int
	ValueSize      int
	LoadVersions   int // versions resident before measuring
	Reads          int // measured read operations
	ZipfSkew       float64
	DeviceCapacity int64
	Seed           int64
	// WithUpdates interleaves an update stream: one PUT per
	// UpdateEvery reads, plus a version retirement partway through (the
	// paper's experiment inserts 11 versions while reading).
	WithUpdates bool
	UpdateEvery int
}

// DefaultFig8Config returns the laptop-scale latency run.
func DefaultFig8Config() Fig8Config {
	return Fig8Config{
		Keys:           300,
		ValueSize:      20 << 10,
		LoadVersions:   4,
		Reads:          8000,
		ZipfSkew:       1.2,
		DeviceCapacity: 2 << 30,
		Seed:           1,
		UpdateEvery:    4,
	}
}

// Fig8Result is the latency distribution for one engine and scenario.
type Fig8Result struct {
	Engine   string
	Scenario string // "no-updates" or "with-updates"
	Latency  metrics.Snapshot
	Errors   int
}

// RunFig8 measures read latency on one engine. Latency is the simulated
// device time each GET spends (memtable work is free in both engines;
// flash I/O dominates, as in the paper's microsecond-scale results).
func RunFig8(kind EngineKind, cfg Fig8Config) (Fig8Result, error) {
	if cfg.Keys == 0 {
		cfg = DefaultFig8Config()
	}
	scenario := "no-updates"
	if cfg.WithUpdates {
		scenario = "with-updates"
	}
	res := Fig8Result{Engine: kind.String(), Scenario: scenario}

	stack, err := newStack(kind, cfg.DeviceCapacity, cfg.Seed)
	if err != nil {
		return res, err
	}
	defer stack.Engine.Close()

	gen, err := workload.NewGenerator(workload.KVConfig{
		Keys:            cfg.Keys,
		ValueSize:       cfg.ValueSize,
		ValueSizeStdDev: cfg.ValueSize / 8,
		DupRatio:        0.3,
		Seed:            cfg.Seed,
	})
	if err != nil {
		return res, err
	}
	load := func() error {
		return gen.NextVersion(func(e workload.Entry) error {
			_, err := stack.Engine.Put(e.Key, e.Version, e.Value, false)
			return err
		})
	}
	for v := 0; v < cfg.LoadVersions; v++ {
		if err := load(); err != nil {
			return res, err
		}
	}

	reads, err := workload.NewReadGen(cfg.Keys, cfg.ZipfSkew, cfg.Seed+7)
	if err != nil {
		return res, err
	}
	verGen, err := workload.NewReadGen(cfg.LoadVersions, 1.3, cfg.Seed+13)
	if err != nil {
		return res, err
	}
	hist := metrics.NewHistogram(0)
	firstLive := uint64(1)
	complete := uint64(cfg.LoadVersions) // newest fully-written version
	nextVersion := uint64(cfg.LoadVersions)
	updKey := 0
	for i := 0; i < cfg.Reads; i++ {
		key := gen.Key(reads.Next())
		// Read a recent complete version: newest minus a Zipf offset.
		ver := complete - uint64(verGen.Next())
		if ver < firstLive {
			ver = firstLive
		}
		_, cost, err := stack.Engine.Get(key, ver)
		if err != nil {
			// Tolerate deleted/retired versions racing the update stream.
			if errors.Is(err, core.ErrDeleted) || errors.Is(err, lsm.ErrDeleted) {
				continue
			}
			res.Errors++
			continue
		}
		hist.Observe(float64(cost.Microseconds()))

		if cfg.WithUpdates && cfg.UpdateEvery > 0 && i%cfg.UpdateEvery == cfg.UpdateEvery-1 {
			// Updating stream: rotate through keys, writing the next
			// version; retire the oldest when a version completes.
			if updKey == 0 {
				nextVersion++
			}
			if _, err := stack.Engine.Put(gen.Key(updKey), nextVersion, gen.Value(updKey), false); err != nil {
				return res, err
			}
			updKey++
			if updKey == cfg.Keys {
				updKey = 0
				complete = nextVersion
				if nextVersion-firstLive >= 4 {
					if _, _, err := stack.Engine.DropVersion(firstLive); err != nil {
						return res, fmt.Errorf("drop v%d: %w", firstLive, err)
					}
					firstLive++
				}
			}
		}
	}
	res.Latency = hist.Snapshot()
	return res, nil
}

// Fig8All runs the four cells of Fig. 8: both engines, both scenarios.
func Fig8All(cfg Fig8Config) ([]Fig8Result, error) {
	var out []Fig8Result
	for _, withUpdates := range []bool{false, true} {
		for _, kind := range []EngineKind{LevelDB, QinDB} {
			c := cfg
			c.WithUpdates = withUpdates
			r, err := RunFig8(kind, c)
			if err != nil {
				return out, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}
