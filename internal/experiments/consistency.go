package experiments

import (
	"fmt"
	"math/rand"

	"directload/internal/bifrost"
	"directload/internal/cluster"
	"directload/internal/indexer"
	"directload/internal/netsim"
)

// The gray-release consistency experiment (paper §3): while one data
// center serves a newer index version, "a user may access the different
// versions of inverted index and summary index"; the paper measures the
// search-result inconsistency at under 0.1% and notes it "rarely
// confuses users because of the highly overlapped content between
// consecutive versions". Here the full pipeline runs — crawl, incremental
// index build, dedup, ship, store — and real multi-term queries are
// answered from every data center; a query counts as inconsistent when
// any DC returns a different result set than the majority.

// ConsistencyConfig shapes the gray-release search experiment.
type ConsistencyConfig struct {
	Documents int
	Queries   int
	TopK      int
	// MutateProb is the per-document probability of changing between
	// the two versions. The paper ships a version roughly hourly, so the
	// per-version churn behind its <0.1% figure is very small; the
	// default models that hourly delta.
	MutateProb float64
	Seed       int64
}

// DefaultConsistencyConfig returns the laptop-scale run at hourly churn.
func DefaultConsistencyConfig() ConsistencyConfig {
	return ConsistencyConfig{Documents: 600, Queries: 400, TopK: 5, MutateProb: 0.01, Seed: 1}
}

// ConsistencyResult reports the measured inconsistency.
type ConsistencyResult struct {
	MutateProb         float64
	Queries            int
	InconsistentDuring int     // gray release active on one DC
	InconsistentAfter  int     // after activating everywhere
	RateDuring         float64 // paper: < 0.1% at production scale
	RateAfter          float64 // must be exactly 0
	ChangedDocs        int     // documents that changed between versions
}

// RunGrayConsistency publishes two index versions built from a mutating
// corpus, gray-releases v2 on one data center, and measures search-result
// agreement across all six.
func RunGrayConsistency(cfg ConsistencyConfig) (ConsistencyResult, error) {
	if cfg.Documents == 0 {
		cfg = DefaultConsistencyConfig()
	}
	res := ConsistencyResult{Queries: cfg.Queries, MutateProb: cfg.MutateProb}

	sysCfg := monthSystemConfig(MonthConfig{
		WithDirectLoad: true,
		LinkBandwidth:  10e6,
		Seed:           cfg.Seed,
	})
	sysCfg.CorruptProb = 0
	sys, err := cluster.New(sysCfg)
	if err != nil {
		return res, err
	}
	defer sys.Close()

	if cfg.MutateProb == 0 {
		cfg.MutateProb = 0.01
	}
	crawler, err := indexer.NewCrawler(indexer.CrawlConfig{
		Documents: cfg.Documents, VIPRatio: 0.1, VocabSize: cfg.Documents * 4,
		DocTerms: 50, MutateProb: cfg.MutateProb, VIPMutateProb: cfg.MutateProb, Seed: cfg.Seed,
	})
	if err != nil {
		return res, err
	}

	ix := indexer.NewInvertedIndex()
	publish := func(version uint64) error {
		docs := crawler.Crawl()
		if version > 1 {
			res.ChangedDocs = len(docs)
		}
		for _, d := range docs {
			ix.Update(d)
		}
		var entries []cluster.Entry
		// All terms are published each version (the deduper strips the
		// unchanged ones); summaries likewise.
		for _, e := range ix.Entries() {
			entries = append(entries, cluster.Entry{
				Key:    []byte("inv/" + e.Term),
				Value:  indexer.EncodeURLList(e.URLs),
				Stream: bifrost.StreamInverted,
			})
		}
		for _, s := range indexer.BuildSummary(crawler.Corpus(), 6) {
			entries = append(entries, cluster.Entry{
				Key:    []byte("sum/" + s.URL),
				Value:  []byte(s.Abstract),
				Stream: bifrost.StreamInverted, // keep abstracts everywhere for the audit
			})
		}
		if _, err := sys.PublishVersion(version, entries); err != nil {
			return err
		}
		return nil
	}

	if err := publish(1); err != nil {
		return res, err
	}
	if err := sys.ActivateEverywhere(1); err != nil {
		return res, err
	}
	if err := publish(2); err != nil {
		return res, err
	}
	grayDC := sys.Top.Regions[0].DCs[0]
	if err := sys.GrayRelease(2, grayDC); err != nil {
		return res, err
	}

	// Query workload: two-term conjunctions drawn from real documents.
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	corpus := crawler.Corpus()
	queryTerms := func() []string {
		d := corpus[rng.Intn(len(corpus))]
		if len(d.Terms) < 2 {
			return []string{d.Terms[0]}
		}
		a := rng.Intn(len(d.Terms))
		b := rng.Intn(len(d.Terms))
		return []string{d.Terms[a], d.Terms[b]}
	}
	searchAt := func(dc netsim.NodeID, terms []string) string {
		results := indexer.Search(terms,
			func(term string) ([]string, bool) {
				v, _, err := sys.Get(dc, []byte("inv/"+term))
				if err != nil {
					return nil, false
				}
				return indexer.DecodeURLList(v), true
			},
			func(url string) (string, bool) {
				v, _, err := sys.Get(dc, []byte("sum/"+url))
				if err != nil {
					return "", false
				}
				return string(v), true
			},
			cfg.TopK)
		sig := ""
		for _, r := range results {
			sig += r.URL + "\x00" + r.Abstract + "\x01"
		}
		return sig
	}
	dcs := sys.Top.AllDCs()
	countDisagreements := func() int {
		bad := 0
		for q := 0; q < cfg.Queries; q++ {
			terms := queryTerms()
			sigs := map[string]int{}
			for _, dc := range dcs {
				sigs[searchAt(dc, terms)]++
			}
			if len(sigs) > 1 {
				bad++
			}
		}
		return bad
	}

	res.InconsistentDuring = countDisagreements()
	res.RateDuring = float64(res.InconsistentDuring) / float64(cfg.Queries)

	if err := sys.ActivateEverywhere(2); err != nil {
		return res, err
	}
	res.InconsistentAfter = countDisagreements()
	res.RateAfter = float64(res.InconsistentAfter) / float64(cfg.Queries)
	return res, nil
}

// ConsistencySweep measures the gray-release inconsistency as a function
// of per-version content churn: the strict query-level rate is bounded by
// the probability that a query touches a changed document.
func ConsistencySweep(base ConsistencyConfig, churns []float64) ([]ConsistencyResult, error) {
	if len(churns) == 0 {
		churns = []float64{0.01, 0.05, 0.15, 0.30}
	}
	var out []ConsistencyResult
	for _, m := range churns {
		cfg := base
		cfg.MutateProb = m
		r, err := RunGrayConsistency(cfg)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// String renders the result in the style of EXPERIMENTS.md.
func (r ConsistencyResult) String() string {
	return fmt.Sprintf("queries=%d during-gray=%.2f%% after-activation=%.2f%% changed-docs=%d",
		r.Queries, 100*r.RateDuring, 100*r.RateAfter, r.ChangedDocs)
}
