package experiments

// These tests assert the *shapes* the paper claims — who wins, by
// roughly what factor, in which direction — on scaled-down runs. They
// are the executable counterpart of EXPERIMENTS.md.

import (
	"testing"
	"time"
)

// smallFig5 keeps test runtime low while preserving the shape.
func smallFig5() Fig5Config {
	return Fig5Config{
		Keys:           120,
		ValueSize:      20 << 10,
		Versions:       9,
		Retain:         4,
		DeviceCapacity: 2 << 30,
		Seed:           1,
		Window:         20 * time.Millisecond,
	}
}

func TestFig5WriteAmplificationShape(t *testing.T) {
	q, l, err := Fig5Pair(smallFig5())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: QinDB ~2.1x WA (incl. GC re-appends), LevelDB 20-25x. At
	// our scale the gap is smaller but must be wide and ordered.
	if q.WriteAmp > 2.5 {
		t.Fatalf("QinDB WA = %.2f, want <= 2.5 (paper ~2.1x)", q.WriteAmp)
	}
	if l.WriteAmp < 3*q.WriteAmp {
		t.Fatalf("LevelDB WA = %.2f vs QinDB %.2f: want >= 3x gap (paper ~10x)",
			l.WriteAmp, q.WriteAmp)
	}
	// Paper: 3x user write throughput advantage. Equal user bytes over
	// device time: compare via elapsed virtual time.
	speedup := float64(l.Elapsed) / float64(q.Elapsed)
	if speedup < 2 {
		t.Fatalf("QinDB ingest speedup = %.2fx, want >= 2x (paper ~3x)", speedup)
	}
	if q.UserBytes != l.UserBytes {
		t.Fatalf("engines saw different workloads: %d vs %d bytes", q.UserBytes, l.UserBytes)
	}
}

func TestFig6ThroughputDynamicsShape(t *testing.T) {
	q, l, err := Fig5Pair(smallFig5())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: LevelDB's user-write rate fluctuates far more (stddev
	// 0.6616 vs 0.0501 MB/s at comparable means). With different means,
	// compare coefficients of variation.
	if q.UserCV >= l.UserCV {
		t.Fatalf("user-write CV: QinDB %.3f vs LevelDB %.3f; paper says QinDB is smoother",
			q.UserCV, l.UserCV)
	}
	if q.UserWrite.Len() < 10 || l.UserWrite.Len() < 10 {
		t.Fatalf("series too short to compare: %d/%d windows",
			q.UserWrite.Len(), l.UserWrite.Len())
	}
}

func TestFig7StorageOccupationShape(t *testing.T) {
	q, l, err := Fig5Pair(smallFig5())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: the lazy GC makes QinDB occupy more flash than LevelDB
	// (~80 GB vs ~40 GB at their scale). Our GC runs right at the end of
	// the run (no read traffic defers it), so the peak of the occupancy
	// curve is the robust statistic.
	_, _, qMin, qPeak := q.Storage.YStats()
	_, _, _, lPeak := l.Storage.YStats()
	if qPeak <= lPeak {
		t.Fatalf("peak disk: QinDB %.4f GB vs LevelDB %.4f GB; paper says QinDB uses more",
			qPeak, lPeak)
	}
	// Occupation grows then plateaus once GC starts.
	if qPeak <= qMin {
		t.Fatal("QinDB storage series is flat; expected growth")
	}
}

func TestFig8ReadLatencyShape(t *testing.T) {
	cfg := DefaultFig8Config()
	cfg.Keys = 200
	cfg.Reads = 4000
	rs, err := Fig8All(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Fig8Result{}
	for _, r := range rs {
		byKey[r.Engine+"/"+r.Scenario] = r
	}
	for _, scenario := range []string{"no-updates", "with-updates"} {
		q := byKey["QinDB/"+scenario]
		l := byKey["LevelDB/"+scenario]
		if q.Latency.Count == 0 || l.Latency.Count == 0 {
			t.Fatalf("%s: empty histograms", scenario)
		}
		// Paper: similar averages (within ~1.3x), QinDB much lower tail.
		if q.Latency.Mean > l.Latency.Mean*1.3 {
			t.Fatalf("%s: QinDB mean %v vs LevelDB %v; paper says comparable",
				scenario, q.Latency.Mean, l.Latency.Mean)
		}
		if q.Latency.P999 > l.Latency.P999 {
			t.Fatalf("%s: QinDB p99.9 %v vs LevelDB %v; paper says QinDB tail is lower",
				scenario, q.Latency.P999, l.Latency.P999)
		}
	}
	// Updates make LevelDB's tail worse (paper: 15081us -> 26458us).
	if byKey["LevelDB/with-updates"].Latency.P999 <= byKey["LevelDB/no-updates"].Latency.P999 {
		t.Fatal("LevelDB tail should grow under concurrent updates")
	}
}

func smallMonth() MonthConfig {
	cfg := DefaultMonthConfig()
	cfg.Keys = 150
	cfg.ValueSize = 8 << 10
	return cfg
}

func TestFig9DedupUpdateTimeAntiCorrelation(t *testing.T) {
	// Fig. 9 isolates the dedup-ratio/update-time relation; failure noise
	// is Fig. 10's subject, so run this one on a quiet fabric.
	cfg := smallMonth()
	cfg.Keys = 250
	cfg.CorruptProb = 0.02
	cfg.LinkFailProb = 0
	days, sum, err := RunMonth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Versions != 10 {
		t.Fatalf("versions = %d, want 10 (paper: 10 versions in a month)", sum.Versions)
	}
	// Compare clean days (no slow repairs, not the initial full load):
	// high-dedup days must update faster than low-dedup days.
	var hiSum, hiN, loSum, loN float64
	for _, d := range days[1:] {
		if d.Repairs > 0 {
			continue // the paper's "other factors"
		}
		if d.DedupRatio >= 0.55 {
			hiSum += d.UpdateMinutes
			hiN++
		} else if d.DedupRatio <= 0.5 {
			loSum += d.UpdateMinutes
			loN++
		}
	}
	if hiN == 0 || loN == 0 {
		t.Skipf("trace lacks clean days in one bucket (hi=%v lo=%v)", hiN, loN)
	}
	if hiSum/hiN >= loSum/loN {
		t.Fatalf("high-dedup days update in %.3f min vs low-dedup %.3f min; want anti-correlation",
			hiSum/hiN, loSum/loN)
	}
}

func TestFig10ThroughputAndMissRatio(t *testing.T) {
	with, without, _, _, err := MonthPair(smallMonth())
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 10a: DirectLoad loads versions faster (paper: up to 5x).
	if with.MeanKps <= without.MeanKps {
		t.Fatalf("mean kps: with %.3f <= without %.3f", with.MeanKps, without.MeanKps)
	}
	// Headline: ~63%% bandwidth saved.
	saving := 1 - float64(with.WireBytes)/float64(with.PayloadBytes)
	if saving < 0.35 || saving > 0.75 {
		t.Fatalf("bandwidth saving = %.2f, want around the paper's 0.63", saving)
	}
	if base := 1 - float64(without.WireBytes)/float64(without.PayloadBytes); base != 0 {
		t.Fatalf("baseline saved bandwidth (%.2f) but dedup is off", base)
	}
	// Fig. 10b: miss ratio positive but under the 0.6% SLO.
	if with.MissRatio > 0.006 {
		t.Fatalf("miss ratio = %.4f, exceeds the paper's 0.6%% SLO", with.MissRatio)
	}
}

func TestRUMAblationTradeoff(t *testing.T) {
	cfg := smallFig5()
	pts, err := RunRUMAblation(cfg, []float64{0.10, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	lazy, eager := pts[0], pts[1]
	// Eager GC: less disk (M), more write amplification (U).
	if eager.DiskGB >= lazy.DiskGB {
		t.Fatalf("disk: eager %.4f >= lazy %.4f GB", eager.DiskGB, lazy.DiskGB)
	}
	if eager.WriteAmp <= lazy.WriteAmp {
		t.Fatalf("WA: eager %.2f <= lazy %.2f", eager.WriteAmp, lazy.WriteAmp)
	}
	// Recovery time follows disk usage (full scan).
	if eager.RecoveryTime >= lazy.RecoveryTime {
		t.Fatalf("recovery: eager %v >= lazy %v", eager.RecoveryTime, lazy.RecoveryTime)
	}
}

func TestInterfaceAblation(t *testing.T) {
	rs, err := RunInterfaceAblation(smallFig5())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("cells = %d, want 4", len(rs))
	}
	byKey := map[string]InterfaceResult{}
	for _, r := range rs {
		byKey[r.Engine+"/"+r.Interface] = r
	}
	// Native runs never migrate (no FTL exists).
	for _, k := range []string{"QinDB/native", "LevelDB/native"} {
		if byKey[k].Migrations != 0 {
			t.Fatalf("%s reports migrations", k)
		}
	}
	// The paper's best case, achieved by construction: QinDB's
	// block-aligned AOFs leave nothing for an FTL to migrate either, so
	// its device writes are identical across interfaces.
	if q, f := byKey["QinDB/native"], byKey["QinDB/ftl"]; f.SysWriteBytes < q.SysWriteBytes {
		t.Fatalf("FTL device writes %d < native %d for QinDB", f.SysWriteBytes, q.SysWriteBytes)
	}
	// LevelDB's software WA dwarfs QinDB's on both interfaces.
	if byKey["LevelDB/ftl"].WriteAmp < 2*byKey["QinDB/ftl"].WriteAmp {
		t.Fatalf("LevelDB WA %.2f vs QinDB %.2f on FTL",
			byKey["LevelDB/ftl"].WriteAmp, byKey["QinDB/ftl"].WriteAmp)
	}
}

func TestTracebackAblationReadCostFlat(t *testing.T) {
	pts, err := RunTracebackAblation(80, 4096, 8, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Bind-at-PUT makes dedup reads a single value fetch: cost must not
	// grow with the duplicate ratio even as tracebacks increase.
	base := pts[0].ReadMeanUs
	for _, p := range pts[1:] {
		if p.ReadMeanUs > base*1.5 {
			t.Fatalf("read cost grew with dup ratio: %.0fus at %.1f vs %.0fus at 0",
				p.ReadMeanUs, p.DupRatio, base)
		}
	}
	if pts[len(pts)-1].Tracebacks <= pts[0].Tracebacks {
		t.Fatal("tracebacks should increase with the duplicate ratio")
	}
}
