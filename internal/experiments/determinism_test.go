package experiments

import "testing"

// TestRunsAreDeterministic: identical configs must reproduce identical
// results — the property that makes EXPERIMENTS.md's recorded numbers
// regenerable and the benchmarks comparable across machines.
func TestRunsAreDeterministic(t *testing.T) {
	cfg := smallFig5()
	a, err := RunFig5(QinDB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFig5(QinDB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.UserBytes != b.UserBytes || a.SysWriteBytes != b.SysWriteBytes ||
		a.SysReadBytes != b.SysReadBytes || a.Elapsed != b.Elapsed {
		t.Fatalf("Fig5 runs diverged:\n%+v\n%+v", a, b)
	}
	if a.WriteAmp != b.WriteAmp || a.FinalDiskGB != b.FinalDiskGB {
		t.Fatalf("Fig5 derived stats diverged: %v/%v vs %v/%v",
			a.WriteAmp, a.FinalDiskGB, b.WriteAmp, b.FinalDiskGB)
	}
}

func TestMonthDeterministic(t *testing.T) {
	cfg := smallMonth()
	d1, s1, err := RunMonth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2, s2, err := RunMonth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatalf("month summaries diverged:\n%+v\n%+v", s1, s2)
	}
	if len(d1) != len(d2) {
		t.Fatalf("day counts diverged: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("day %d diverged:\n%+v\n%+v", d1[i].Day, d1[i], d2[i])
		}
	}
}

func TestSeedChangesResults(t *testing.T) {
	a := smallFig5()
	b := smallFig5()
	b.Seed = 99
	ra, err := RunFig5(QinDB, a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := RunFig5(QinDB, b)
	if err != nil {
		t.Fatal(err)
	}
	if ra.SysWriteBytes == rb.SysWriteBytes && ra.Elapsed == rb.Elapsed {
		t.Fatal("different seeds produced byte-identical runs; randomness not wired")
	}
}
