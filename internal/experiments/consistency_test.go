package experiments

import "testing"

func TestGrayConsistency(t *testing.T) {
	rs, err := ConsistencySweep(ConsistencyConfig{
		Documents: 250, Queries: 150, TopK: 5, Seed: 1,
	}, []float64{0.01, 0.30})
	if err != nil {
		t.Fatal(err)
	}
	low, high := rs[0], rs[1]
	t.Logf("low churn: %v", low)
	t.Logf("high churn: %v", high)
	// Post-activation searches are identical everywhere, always.
	for _, r := range rs {
		if r.RateAfter != 0 {
			t.Fatalf("inconsistency after activation = %v, want 0", r.RateAfter)
		}
	}
	// Gray-release inconsistency scales with content churn; at hourly
	// churn it stays small (the regime behind the paper's <0.1%).
	if low.RateDuring >= high.RateDuring {
		t.Fatalf("inconsistency should grow with churn: %.3f vs %.3f",
			low.RateDuring, high.RateDuring)
	}
	if low.RateDuring > 0.25 {
		t.Fatalf("hourly-churn inconsistency = %.3f, want small", low.RateDuring)
	}
}
