// Package experiments implements the paper's evaluation section: every
// figure of §4 and the §5 RUM analysis has a runner here that generates
// the workload, drives the system, and returns the same series/statistics
// the paper plots. bench_test.go and cmd/figures are thin wrappers around
// these runners, so `go test -bench` and the CSV tool always agree.
package experiments

import (
	"fmt"
	"time"

	"directload/internal/aof"
	"directload/internal/core"
	"directload/internal/lsm"
	"directload/internal/metrics"
	"directload/internal/mint"
	"directload/internal/workload"
)

// EngineKind selects the storage engine under test.
type EngineKind int

// Engines under test.
const (
	QinDB EngineKind = iota
	LevelDB
)

func (k EngineKind) String() string {
	if k == QinDB {
		return "QinDB"
	}
	return "LevelDB"
}

// newStack builds a fresh single-node storage stack of the given kind.
//
// The experiments run at laptop scale (tens of MB instead of the paper's
// hundreds of GB), so both engines' structural constants are scaled by
// the same factor to keep tree depth and file counts equivalent to a
// production deployment: LevelDB's 4 MB memtable / 10 MB L1 / 2 MB files
// become 512 KB / 1.25 MB / 256 KB (scale 1/8), and QinDB's 64 MB AOFs
// become 16 MB. The ratios the paper measures (write amplification, user
// throughput, occupancy) are preserved under this scaling; absolute MB/s
// are not comparable to the paper's testbed and are not claimed.
func newStack(kind EngineKind, capacity int64, seed int64) (*mint.EngineStack, error) {
	switch kind {
	case QinDB:
		opts := core.DefaultOptions()
		opts.AOF = aof.Config{FileSize: 16 << 20, GCThreshold: 0.25}
		return mint.QinDBFactory(opts)(capacity, seed)
	case LevelDB:
		opts := lsm.Options{
			MemtableSize:        512 << 10,
			L0CompactionTrigger: 4,
			L1MaxBytes:          1280 << 10,
			LevelMultiplier:     10,
			TargetFileSize:      256 << 10,
			MaxLevels:           7,
			// LevelDB's block cache scales with the cache:data ratio,
			// not the structural 1/8 factor: the paper's 8 MB cache
			// fronts tens of GB (~0.02% coverage), so its scaled
			// equivalent over our ~6 MB working set is a few KB —
			// effectively negligible, exactly as in the paper's runs.
			BlockCacheBytes: 16 << 10,
		}
		return mint.LSMFactory(opts)(capacity, seed)
	default:
		return nil, fmt.Errorf("experiments: unknown engine %d", kind)
	}
}

// Fig5Config shapes the write-amplification microbenchmark (paper
// §4.1.1): a summary-index workload of 20-byte keys and ~20 KB values,
// inserted version after version while a deletion pass retires the
// oldest version once four are resident — the paper's "8 write threads
// including 1 deletion thread and 7 insertion threads", serialized.
type Fig5Config struct {
	Keys           int   // distinct keys per version
	ValueSize      int   // mean value size (paper: 20 KB)
	Versions       int   // paper: 11
	Retain         int   // paper: 4
	DeviceCapacity int64 // simulated SSD size
	Seed           int64
	// Window is the virtual-time sampling window for the throughput
	// series (the paper samples minutes of wall time; the simulated
	// device compresses time, so the default is 200 ms of device time).
	Window time.Duration
}

// DefaultFig5Config returns a laptop-scale run (~45 MB of user writes).
func DefaultFig5Config() Fig5Config {
	return Fig5Config{
		Keys:           200,
		ValueSize:      20 << 10,
		Versions:       11,
		Retain:         4,
		DeviceCapacity: 2 << 30,
		Seed:           1,
		Window:         20 * time.Millisecond,
	}
}

// Fig5Result carries everything Figs. 5, 6 and 7 plot for one engine.
type Fig5Result struct {
	Engine string

	// Per-window MB/s series over virtual minutes (Figs. 5a/5b, 6a/6b).
	UserWrite *metrics.Series
	SysWrite  *metrics.Series
	SysRead   *metrics.Series
	// Storage occupation in GB over virtual minutes (Fig. 7).
	Storage *metrics.Series

	// Aggregates.
	UserBytes     int64
	SysWriteBytes int64
	SysReadBytes  int64
	WriteAmp      float64 // SysWriteBytes / UserBytes
	UserMBps      float64 // mean of the user-write series
	SysWriteMBps  float64
	SysReadMBps   float64
	UserStdDev    float64 // Fig. 6's metric (MB/s over windows)
	UserCV        float64 // stddev normalized by the mean: comparable
	SysWriteCV    float64 // across engines whose rates differ
	FinalDiskGB   float64
	Elapsed       time.Duration // virtual device time
}

// RunFig5 executes the write-amplification experiment on one engine.
func RunFig5(kind EngineKind, cfg Fig5Config) (Fig5Result, error) {
	if cfg.Keys == 0 {
		cfg = DefaultFig5Config()
	}
	stack, err := newStack(kind, cfg.DeviceCapacity, cfg.Seed)
	if err != nil {
		return Fig5Result{}, err
	}
	defer stack.Engine.Close()

	res := Fig5Result{
		Engine:    kind.String(),
		UserWrite: &metrics.Series{},
		SysWrite:  &metrics.Series{},
		SysRead:   &metrics.Series{},
		Storage:   &metrics.Series{},
	}
	userWin := metrics.NewThroughputWindow(cfg.Window, res.UserWrite)
	sysWWin := metrics.NewThroughputWindow(cfg.Window, res.SysWrite)
	sysRWin := metrics.NewThroughputWindow(cfg.Window, res.SysRead)
	dev := stack.Device
	dev.SetTraceFuncs(
		func(now time.Duration, n int64) { sysWWin.Record(now, n) },
		func(now time.Duration, n int64) { sysRWin.Record(now, n) },
	)
	defer dev.SetTraceFuncs(nil, nil)

	gen, err := workload.NewGenerator(workload.KVConfig{
		Keys:            cfg.Keys,
		ValueSize:       cfg.ValueSize,
		ValueSizeStdDev: cfg.ValueSize / 8,
		DupRatio:        0, // Fig. 5 measures raw insert churn, not dedup
		Seed:            cfg.Seed,
	})
	if err != nil {
		return res, err
	}

	sampleStorage := func() {
		res.Storage.Append(dev.Now().Minutes(), float64(stack.UsedBytes())/(1<<30))
	}
	var userBytes int64
	storageEvery := cfg.Keys / 4
	if storageEvery == 0 {
		storageEvery = 1
	}
	for v := 1; v <= cfg.Versions; v++ {
		// The deletion thread runs concurrently with the insertion
		// threads in the paper; serialized here, each insert of the new
		// version is interleaved with the delete of the same key's
		// retired version.
		var delVersion uint64
		if v > cfg.Retain {
			delVersion = uint64(v - cfg.Retain)
		}
		i := 0
		err := gen.NextVersion(func(e workload.Entry) error {
			if _, err := stack.Engine.Put(e.Key, e.Version, e.Value, false); err != nil {
				return err
			}
			n := int64(len(e.Key) + len(e.Value))
			userBytes += n
			userWin.Record(dev.Now(), n)
			if delVersion > 0 {
				if _, err := stack.Engine.Del(e.Key, delVersion); err != nil {
					return fmt.Errorf("del v%d key %q: %w", delVersion, e.Key, err)
				}
			}
			if i%storageEvery == 0 {
				sampleStorage()
			}
			i++
			return nil
		})
		if err != nil {
			return res, err
		}
		sampleStorage()
	}
	userWin.Flush()
	sysWWin.Flush()
	sysRWin.Flush()
	sampleStorage()

	st := dev.Stats()
	res.UserBytes = userBytes
	res.SysWriteBytes = st.SysWriteBytes
	res.SysReadBytes = st.SysReadBytes
	res.WriteAmp = st.WriteAmplification(userBytes)
	var sysWSD float64
	res.UserMBps, res.UserStdDev, _, _ = res.UserWrite.YStats()
	res.SysWriteMBps, sysWSD, _, _ = res.SysWrite.YStats()
	res.SysReadMBps, _, _, _ = res.SysRead.YStats()
	if res.UserMBps > 0 {
		res.UserCV = res.UserStdDev / res.UserMBps
	}
	if res.SysWriteMBps > 0 {
		res.SysWriteCV = sysWSD / res.SysWriteMBps
	}
	res.FinalDiskGB = float64(stack.UsedBytes()) / (1 << 30)
	res.Elapsed = dev.Now()
	return res, nil
}

// Fig5Pair runs both engines on identical workloads — the side-by-side
// comparison of Figs. 5a vs 5b (and the inputs to Figs. 6 and 7).
func Fig5Pair(cfg Fig5Config) (qindb, leveldb Fig5Result, err error) {
	qindb, err = RunFig5(QinDB, cfg)
	if err != nil {
		return
	}
	leveldb, err = RunFig5(LevelDB, cfg)
	return
}
