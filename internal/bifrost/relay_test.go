package bifrost

import (
	"testing"
	"time"

	"directload/internal/netsim"
)

// TestMonitorDrivenRelaySelection: with the centralized monitor
// reporting one relay's uplink as saturated, the shipper steers new
// slices to less-loaded relays (paper §2.2).
func TestMonitorDrivenRelaySelection(t *testing.T) {
	top := testTopology(t)
	sh := NewShipper(top, 1)
	region := top.Regions[0]

	// Saturate the builder->relay-0 uplink with background traffic for a
	// long time, letting the monitor observe it.
	hot := region.Relays[0]
	link, ok := top.Net.LinkBetween(top.Builder, hot)
	if !ok {
		t.Fatal("missing uplink")
	}
	top.Net.Send([]*netsim.Link{link}, netsim.ClassInverted, 50e6, nil) // ~50s of load
	top.Net.Run(10 * time.Second)                                       // monitor samples the saturation

	// Ship a burst of slices; count how many are routed via the hot relay
	// (observed through the relay->DC links' byte counters).
	for i := 0; i < 12; i++ {
		if err := sh.ShipToRegion(makeSlice(1, StreamInverted, 200000), region, nil); err != nil {
			t.Fatal(err)
		}
	}
	top.Net.Run(0)
	hotBytes, _, _ := top.Net.LinkStats(hot, region.DCs[0])
	var coldBytes float64
	for _, relay := range region.Relays[1:] {
		b, _, _ := top.Net.LinkStats(relay, region.DCs[0])
		coldBytes += b
	}
	if hotBytes >= coldBytes {
		t.Fatalf("hot relay forwarded %.0f bytes vs %.0f on cold relays; monitor steering failed",
			hotBytes, coldBytes)
	}
}

// TestRoundRobinWithoutMonitor: with no monitor, relays are used in
// rotation so load spreads.
func TestRoundRobinWithoutMonitor(t *testing.T) {
	cfg := TopologyConfig{
		RegionNames:     []string{"solo"},
		RelaysPerRegion: 3,
		DCsPerRegion:    1,
		BuilderUplink:   1e6, BackboneBandwidth: 1e6, RegionalBandwidth: 1e6,
		MonitorInterval: 0, // disabled
	}
	top, err := BuildTopology(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh := NewShipper(top, 1)
	region := top.Regions[0]
	for i := 0; i < 6; i++ {
		if err := sh.ShipToRegion(makeSlice(1, StreamInverted, 10000), region, nil); err != nil {
			t.Fatal(err)
		}
	}
	top.Net.Run(0)
	for _, relay := range region.Relays {
		b, _, _ := top.Net.LinkStats(top.Builder, relay)
		if b == 0 {
			t.Fatalf("relay %s never used under round-robin", relay)
		}
	}
}

// TestDeliveryRetriesCounted: retry counts surface in deliveries so
// operators can see flaky paths.
func TestDeliveryRetriesCounted(t *testing.T) {
	top := testTopology(t)
	sh := NewShipper(top, 99)
	sh.CorruptProb = 0.6
	var maxRetries int
	for i := 0; i < 10; i++ {
		sh.ShipToRegion(makeSlice(1, StreamSummary, 5000), top.Regions[2], func(d Delivery) {
			if d.Retries > maxRetries {
				maxRetries = d.Retries
			}
		})
	}
	top.Net.Run(0)
	if maxRetries == 0 {
		t.Fatal("expected nonzero delivery retries at 60% corruption")
	}
}

// TestBackboneDetour: when the builder's uplinks to a region are
// saturated, a slice already cached by another region's relay is
// fetched over the backbone instead (paper §2.2).
func TestBackboneDetour(t *testing.T) {
	cfg := TopologyConfig{
		RegionNames:     []string{"north", "east"},
		RelaysPerRegion: 2,
		DCsPerRegion:    1,
		BuilderUplink:   1e6, BackboneBandwidth: 1e6, RegionalBandwidth: 1e6,
		ReserveStreams:  false,
		MonitorInterval: time.Second,
	}
	top, err := BuildTopology(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh := NewShipper(top, 1)
	north, east := top.Regions[0], top.Regions[1]

	// Deliver to north first: its gateway relay now caches the slice.
	slice := makeSlice(1, StreamInverted, 100_000)
	if err := sh.ShipToRegion(slice, north, nil); err != nil {
		t.Fatal(err)
	}
	top.Net.Run(0)

	// Saturate every builder->east uplink with long-running traffic and
	// let the monitor observe it.
	for _, relay := range east.Relays {
		link, _ := top.Net.LinkBetween(top.Builder, relay)
		top.Net.Send([]*netsim.Link{link}, netsim.ClassDefault, 100e6, nil)
	}
	top.Net.Run(20 * time.Second)

	delivered := 0
	if err := sh.ShipToRegion(slice, east, func(d Delivery) { delivered++ }); err != nil {
		t.Fatal(err)
	}
	top.Net.Run(2 * time.Minute)
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
	if sh.Stats().BackboneDetours == 0 {
		t.Fatal("expected a backbone detour under builder congestion")
	}
	// Bytes actually crossed the inter-region link.
	backbone, _, ok := top.Net.LinkStats(north.Relays[0], east.Relays[0])
	if !ok || backbone == 0 {
		t.Fatalf("backbone carried %v bytes, want > 0", backbone)
	}
}
