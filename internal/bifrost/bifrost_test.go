package bifrost

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"directload/internal/netsim"
)

func TestDeduperFirstVersionNeverDedups(t *testing.T) {
	d := NewDeduper()
	for i := 0; i < 100; i++ {
		if d.Process([]byte(fmt.Sprintf("k%d", i)), []byte("same")) {
			t.Fatal("first version must never deduplicate")
		}
	}
	st := d.AdvanceVersion()
	if st.KeyRatio() != 0 {
		t.Fatalf("KeyRatio = %v", st.KeyRatio())
	}
}

func TestDeduperDetectsUnchangedValues(t *testing.T) {
	d := NewDeduper()
	for i := 0; i < 100; i++ {
		d.Process([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("value-%d", i)))
	}
	d.AdvanceVersion()
	// Second version: 70 unchanged, 30 modified (the paper's 70% figure).
	dedup := 0
	for i := 0; i < 100; i++ {
		val := fmt.Sprintf("value-%d", i)
		if i >= 70 {
			val = fmt.Sprintf("VALUE-%d", i)
		}
		if d.Process([]byte(fmt.Sprintf("k%d", i)), []byte(val)) {
			dedup++
		}
	}
	if dedup != 70 {
		t.Fatalf("deduped %d of 100, want 70", dedup)
	}
	st := d.AdvanceVersion()
	if r := st.KeyRatio(); r != 0.7 {
		t.Fatalf("KeyRatio = %v, want 0.7", r)
	}
	if r := st.ByteRatio(); r < 0.65 || r > 0.75 {
		t.Fatalf("ByteRatio = %v, want ~0.7", r)
	}
}

func TestDeduperComparesAgainstPreviousVersionOnly(t *testing.T) {
	d := NewDeduper()
	d.Process([]byte("k"), []byte("v1"))
	d.AdvanceVersion()
	if d.Process([]byte("k"), []byte("v2")) {
		t.Fatal("changed value must not dedup")
	}
	d.AdvanceVersion()
	// v3 equals v1 but NOT v2: must not dedup (comparison is only against
	// the immediately preceding version).
	if d.Process([]byte("k"), []byte("v1")) {
		t.Fatal("value equal to v1 but not v2 must not dedup")
	}
}

func TestDeduperNewKeys(t *testing.T) {
	d := NewDeduper()
	d.Process([]byte("old"), []byte("v"))
	d.AdvanceVersion()
	if d.Process([]byte("new"), []byte("v")) {
		t.Fatal("a key absent from the previous version must not dedup")
	}
}

func TestSignatureDistinct(t *testing.T) {
	if Sign([]byte("a")) == Sign([]byte("b")) {
		t.Fatal("different values must not collide (these two at least)")
	}
	if Sign([]byte("same")) != Sign([]byte("same")) {
		t.Fatal("equal values must have equal signatures")
	}
}

func TestSliceBuilderPacking(t *testing.T) {
	b := NewSliceBuilder(3, StreamSummary, 1000)
	for i := 0; i < 10; i++ {
		b.Add(Record{Key: []byte(fmt.Sprintf("key-%02d", i)), Version: 3, Value: make([]byte, 200)})
	}
	slices := b.Finish()
	if len(slices) < 3 {
		t.Fatalf("slices = %d, want >= 3 for 10*~220B at 1000B limit", len(slices))
	}
	total := 0
	for i, s := range slices {
		if s.Version != 3 || s.Stream != StreamSummary || s.Seq != i {
			t.Fatalf("slice %d meta = %+v", i, s)
		}
		if !s.Verify() {
			t.Fatalf("slice %d fails verification", i)
		}
		if s.Size() > 1000+300 {
			t.Fatalf("slice %d oversize: %d", i, s.Size())
		}
		total += len(s.Records)
	}
	if total != 10 {
		t.Fatalf("records across slices = %d, want 10", total)
	}
}

func TestSliceChecksumDetectsCorruption(t *testing.T) {
	b := NewSliceBuilder(1, StreamInverted, 0)
	b.Add(Record{Key: []byte("k"), Version: 1, Value: []byte("payload")})
	s := b.Finish()[0]
	if !s.Verify() {
		t.Fatal("fresh slice must verify")
	}
	s.Corrupt()
	if s.Verify() {
		t.Fatal("corrupted slice must fail verification")
	}
	s.Repair()
	if !s.Verify() {
		t.Fatal("repaired slice must verify")
	}
	// Content tampering is also detected.
	s.Records[0].Value[0] ^= 0xFF
	if s.Verify() {
		t.Fatal("tampered slice must fail verification")
	}
}

func testTopology(t *testing.T) *Topology {
	t.Helper()
	cfg := TopologyConfig{
		RegionNames:       []string{"north", "east", "south"},
		RelaysPerRegion:   4,
		DCsPerRegion:      2,
		BuilderUplink:     1e6,
		BackboneBandwidth: 1e6,
		RegionalBandwidth: 1e6,
		ReserveStreams:    true,
		MonitorInterval:   time.Second,
	}
	top, err := BuildTopology(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestTopologyShape(t *testing.T) {
	top := testTopology(t)
	if len(top.Regions) != 3 {
		t.Fatalf("regions = %d", len(top.Regions))
	}
	if len(top.AllDCs()) != 6 {
		t.Fatalf("DCs = %d, want 6 (paper: six data centers)", len(top.AllDCs()))
	}
	// Backbone connectivity between regions.
	if _, ok := top.Net.LinkBetween(top.Regions[0].Relays[0], top.Regions[1].Relays[0]); !ok {
		t.Fatal("missing backbone link")
	}
}

func makeSlice(version uint64, stream StreamType, bytes int) *Slice {
	b := NewSliceBuilder(version, stream, 0)
	b.Add(Record{Key: []byte("k"), Version: version, Value: make([]byte, bytes)})
	return b.Finish()[0]
}

func TestShipToRegionDeliversToAllDCs(t *testing.T) {
	top := testTopology(t)
	sh := NewShipper(top, 1)
	slice := makeSlice(1, StreamInverted, 100000)
	var got []netsim.NodeID
	if err := sh.ShipToRegion(slice, top.Regions[0], func(d Delivery) {
		got = append(got, d.DC)
	}); err != nil {
		t.Fatal(err)
	}
	top.Net.Run(0)
	if len(got) != 2 {
		t.Fatalf("deliveries = %v, want both DCs of the region", got)
	}
	if sh.MissRatio() != 0 {
		t.Fatalf("MissRatio = %v", sh.MissRatio())
	}
}

func TestShipEverywhere(t *testing.T) {
	top := testTopology(t)
	sh := NewShipper(top, 1)
	slice := makeSlice(1, StreamSummary, 50000)
	seen := map[netsim.NodeID]bool{}
	if err := sh.ShipEverywhere(slice, func(d Delivery) { seen[d.DC] = true }); err != nil {
		t.Fatal(err)
	}
	top.Net.Run(0)
	if len(seen) != 6 {
		t.Fatalf("delivered to %d DCs, want 6", len(seen))
	}
	st := sh.Stats()
	if st.Deliveries != 6 {
		t.Fatalf("Deliveries = %d", st.Deliveries)
	}
	// Payload counted once per delivery; network bytes >= payload because
	// of the relay hop fan-in.
	if st.BytesSent < st.PayloadBytes {
		t.Fatalf("BytesSent %v < PayloadBytes %v", st.BytesSent, st.PayloadBytes)
	}
}

func TestCorruptionTriggersRetransmit(t *testing.T) {
	top := testTopology(t)
	sh := NewShipper(top, 7)
	sh.CorruptProb = 0.5
	delivered := 0
	for i := 0; i < 20; i++ {
		slice := makeSlice(1, StreamInverted, 10000)
		if err := sh.ShipToRegion(slice, top.Regions[0], func(d Delivery) { delivered++ }); err != nil {
			t.Fatal(err)
		}
	}
	top.Net.Run(0)
	st := sh.Stats()
	if st.CorruptionSeen == 0 || st.Retransmits == 0 {
		t.Fatalf("no corruption handled: %+v", st)
	}
	if delivered != 40 {
		t.Fatalf("delivered = %d, want 40 (every slice eventually lands)", delivered)
	}
	// Retransmissions inflate network bytes above payload bytes.
	if st.BytesSent <= st.PayloadBytes {
		t.Fatalf("retransmits should inflate BytesSent: %+v", st)
	}
}

func TestLinkFailureRecovery(t *testing.T) {
	top := testTopology(t)
	sh := NewShipper(top, 3)
	slice := makeSlice(1, StreamInverted, 500000)
	delivered := 0
	region := top.Regions[0]
	if err := sh.ShipToRegion(slice, region, func(d Delivery) { delivered++ }); err != nil {
		t.Fatal(err)
	}
	// Kill the first relay's DC links mid-flight; the retry path must
	// eventually deliver once they come back.
	top.Net.After(100*time.Millisecond, func(now time.Duration) {
		for _, dc := range region.DCs {
			for _, relay := range region.Relays {
				top.Net.SetLinkDown(relay, dc, true)
			}
		}
	})
	top.Net.After(60*time.Second, func(now time.Duration) {
		for _, dc := range region.DCs {
			for _, relay := range region.Relays {
				top.Net.SetLinkDown(relay, dc, false)
			}
		}
	})
	top.Net.Run(10 * time.Minute)
	if delivered != 2 {
		t.Fatalf("delivered = %d, want 2 after link recovery", delivered)
	}
}

func TestMissRatioDeadline(t *testing.T) {
	top := testTopology(t)
	sh := NewShipper(top, 1)
	sh.Deadline = 1 * time.Second // tight deadline to force misses
	slice := makeSlice(1, StreamInverted, 10_000_000)
	if err := sh.ShipToRegion(slice, top.Regions[0], nil); err != nil {
		t.Fatal(err)
	}
	top.Net.Run(0)
	if sh.MissRatio() == 0 {
		t.Fatal("10 MB over 1 MB/s links must miss a 1 s deadline")
	}
}

func TestStreamsShareLinkByReservation(t *testing.T) {
	// Summary and inverted slices of proportional size should complete
	// simultaneously on a reserved link, per the paper's design goal that
	// "individual data streams arrive at all data centers simultaneously".
	top := testTopology(t)
	sh := NewShipper(top, 1)
	var sumAt, invAt time.Duration
	sum := makeSlice(1, StreamSummary, 400_000)
	inv := makeSlice(1, StreamInverted, 600_000)
	region := top.Regions[1]
	// Pin both to the same relay by using a monitor-free round-robin:
	// easier to just ship everywhere and compare totals.
	sh.ShipToRegion(sum, region, func(d Delivery) {
		if d.Arrived > sumAt {
			sumAt = d.Arrived
		}
	})
	sh.ShipToRegion(inv, region, func(d Delivery) {
		if d.Arrived > invAt {
			invAt = d.Arrived
		}
	})
	top.Net.Run(0)
	if sumAt == 0 || invAt == 0 {
		t.Fatal("streams not delivered")
	}
	ratio := float64(sumAt) / float64(invAt)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("stream completion skew too large: summary=%v inverted=%v", sumAt, invAt)
	}
}

func TestQuickSliceChecksumRoundTrip(t *testing.T) {
	f := func(keys [][]byte, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewSliceBuilder(uint64(seed), StreamSummary, 1<<20)
		for _, k := range keys {
			if len(k) == 0 {
				continue
			}
			val := make([]byte, rng.Intn(100))
			rng.Read(val)
			b.Add(Record{Key: k, Version: 1, Value: val, Dedup: rng.Intn(2) == 0})
		}
		for _, s := range b.Finish() {
			if !s.Verify() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
