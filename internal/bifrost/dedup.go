// Package bifrost implements the index delivery subsystem of DirectLoad
// (paper §2.2): cross-version deduplication by signature comparison,
// slice packing with end-to-end checksums, a three-region relay topology
// over the netsim fabric, bandwidth-reserved stream scheduling, hop-wise
// integrity verification with retransmission, and the delivery
// bookkeeping behind the paper's update-time and miss-ratio figures.
package bifrost

import (
	"encoding/binary"
	"hash/crc32"
	"hash/fnv"
	"sync"
)

// Signature is the per-value fingerprint compared across versions.
// FNV-128a is collision-safe at web scale for our simulation purposes and
// costs no allocations to compare.
type Signature [16]byte

// Sign fingerprints a value.
func Sign(value []byte) Signature {
	h := fnv.New128a()
	h.Write(value)
	var sig Signature
	h.Sum(sig[:0])
	return sig
}

// DedupStats summarizes a deduper's effect. The paper reports ~70% of
// index entries unchanged between versions and 63% of update bandwidth
// saved.
type DedupStats struct {
	Keys        int64 // entries seen this version
	DedupKeys   int64 // entries whose value matched the previous version
	Bytes       int64 // value bytes seen this version
	DedupBytes  int64 // value bytes elided
	TotalKeys   int64 // lifetime counters
	TotalDedup  int64
	TotalBytes  int64
	TotalElided int64
}

// KeyRatio returns the fraction of entries deduplicated this version.
func (s DedupStats) KeyRatio() float64 {
	if s.Keys == 0 {
		return 0
	}
	return float64(s.DedupKeys) / float64(s.Keys)
}

// ByteRatio returns the fraction of value bytes elided this version —
// the bandwidth saving of Fig. 9.
func (s DedupStats) ByteRatio() float64 {
	if s.Bytes == 0 {
		return 0
	}
	return float64(s.DedupBytes) / float64(s.Bytes)
}

// Deduper removes redundant values between consecutive index versions by
// comparing signatures (paper §2.2: "Only if the signature differs, a
// key-value pair is forwarded to the network transmission, otherwise the
// value field will be removed before delivery").
type Deduper struct {
	mu   sync.Mutex
	prev map[string]Signature // signatures of the previous version
	cur  map[string]Signature // signatures being accumulated
	s    DedupStats
	met  dedupMetrics
}

// NewDeduper returns an empty deduper: the first version is never
// deduplicated (there is nothing to compare against).
func NewDeduper() *Deduper {
	return &Deduper{
		prev: make(map[string]Signature),
		cur:  make(map[string]Signature),
	}
}

// Process decides the fate of one key-value pair in the current version:
// it returns true when the value is identical to the previous version's
// and must be stripped before transmission.
func (d *Deduper) Process(key, value []byte) bool {
	sig := Sign(value)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cur[string(key)] = sig
	d.s.Keys++
	d.s.TotalKeys++
	d.s.Bytes += int64(len(value))
	d.s.TotalBytes += int64(len(value))
	d.met.keys.Inc()
	d.met.bytes.Add(int64(len(value)))
	if old, ok := d.prev[string(key)]; ok && old == sig {
		d.s.DedupKeys++
		d.s.TotalDedup++
		d.s.DedupBytes += int64(len(value))
		d.s.TotalElided += int64(len(value))
		d.met.hits.Inc()
		d.met.bytesElided.Add(int64(len(value)))
		return true
	}
	return false
}

// AdvanceVersion seals the current version: its signatures become the
// comparison base for the next one, and the per-version counters reset.
func (d *Deduper) AdvanceVersion() DedupStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := d.s
	d.prev = d.cur
	d.cur = make(map[string]Signature, len(d.prev))
	d.s.Keys, d.s.DedupKeys, d.s.Bytes, d.s.DedupBytes = 0, 0, 0, 0
	return out
}

// Stats returns a snapshot of the counters.
func (d *Deduper) Stats() DedupStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.s
}

// --- slices ---------------------------------------------------------------

// StreamType tags the two index streams the paper ships with reserved
// bandwidth shares (40% summary / 60% inverted).
type StreamType int

// Stream types.
const (
	StreamSummary StreamType = iota
	StreamInverted
)

func (t StreamType) String() string {
	if t == StreamSummary {
		return "summary"
	}
	return "inverted"
}

// Record is one index entry inside a slice.
type Record struct {
	Key     []byte
	Version uint64
	Value   []byte
	Dedup   bool // value stripped by the deduper
}

// wireSize is the record's contribution to slice bytes on the network.
func (r Record) wireSize() int64 {
	return int64(len(r.Key) + len(r.Value) + 16)
}

// Slice is the transmission unit: index data are shipped as slices and
// every intermediate node re-verifies the slice checksum (paper §3,
// "Failures in Transmission").
type Slice struct {
	Version  uint64
	Stream   StreamType
	Seq      int
	Records  []Record
	Checksum uint32
	corrupt  bool // simulated in-flight corruption
}

// Size returns the slice's wire size in bytes.
func (s *Slice) Size() int64 {
	var total int64
	for _, r := range s.Records {
		total += r.wireSize()
	}
	return total + 64 // header
}

// Seal computes and stores the checksum over the slice content.
func (s *Slice) Seal() {
	s.Checksum = s.computeChecksum()
}

func (s *Slice) computeChecksum() uint32 {
	crc := crc32.ChecksumIEEE(nil)
	var hdr [13]byte
	for _, r := range s.Records {
		binary.LittleEndian.PutUint64(hdr[0:], r.Version)
		binary.LittleEndian.PutUint32(hdr[8:], uint32(len(r.Key)))
		if r.Dedup {
			hdr[12] = 1
		} else {
			hdr[12] = 0
		}
		crc = crc32.Update(crc, crc32.IEEETable, hdr[:])
		crc = crc32.Update(crc, crc32.IEEETable, r.Key)
		crc = crc32.Update(crc, crc32.IEEETable, r.Value)
	}
	return crc
}

// Verify recomputes the checksum; a corrupted slice fails.
func (s *Slice) Verify() bool {
	if s.corrupt {
		return false
	}
	return s.computeChecksum() == s.Checksum
}

// Corrupt marks the slice as damaged in flight (failure injection).
func (s *Slice) Corrupt() { s.corrupt = true }

// Repair clears injected damage, modelling a clean retransmission.
func (s *Slice) Repair() { s.corrupt = false }

// SliceBuilder packs records into bounded slices.
type SliceBuilder struct {
	version uint64
	stream  StreamType
	limit   int64
	seq     int
	cur     *Slice
	curSize int64
	out     []*Slice
}

// NewSliceBuilder creates a builder producing slices of at most limit
// bytes for the given stream and version.
func NewSliceBuilder(version uint64, stream StreamType, limit int64) *SliceBuilder {
	if limit <= 0 {
		limit = 4 << 20
	}
	return &SliceBuilder{version: version, stream: stream, limit: limit}
}

// Add appends one record, starting a new slice when the current one is
// full.
func (b *SliceBuilder) Add(r Record) {
	if b.cur != nil && b.curSize+r.wireSize() > b.limit && len(b.cur.Records) > 0 {
		b.finishCurrent()
	}
	if b.cur == nil {
		b.cur = &Slice{Version: b.version, Stream: b.stream, Seq: b.seq}
		b.seq++
		b.curSize = 64
	}
	b.cur.Records = append(b.cur.Records, r)
	b.curSize += r.wireSize()
}

func (b *SliceBuilder) finishCurrent() {
	b.cur.Seal()
	b.out = append(b.out, b.cur)
	b.cur = nil
	b.curSize = 0
}

// Finish seals any partial slice and returns all slices built.
func (b *SliceBuilder) Finish() []*Slice {
	if b.cur != nil && len(b.cur.Records) > 0 {
		b.finishCurrent()
	}
	out := b.out
	b.out = nil
	return out
}
