package bifrost

import (
	"fmt"
	"math/rand"
	"time"

	"directload/internal/metrics"
	"directload/internal/netsim"
)

// Region is one of the three regional deployments: a relay group of
// 20-30 nodes caching and forwarding index data to the two data centers
// in the same region (paper §2.2).
type Region struct {
	Name   string
	Relays []netsim.NodeID
	DCs    []netsim.NodeID
}

// Topology is the national fabric: one builder data center (data
// center#0), three regions, backbone links between every pair of relay
// groups, and intra-region links from relays to data centers.
type Topology struct {
	Net     *netsim.Net
	Builder netsim.NodeID
	Regions []Region
	Monitor *netsim.Monitor
}

// TopologyConfig sizes the simulated fabric.
type TopologyConfig struct {
	RegionNames     []string // default: north, east, south
	RelaysPerRegion int      // paper: 20-30
	DCsPerRegion    int      // paper: 2
	// BuilderUplink is the builder→relay bandwidth per link (bytes/s).
	BuilderUplink float64
	// BackboneBandwidth is the relay↔relay inter-region bandwidth.
	BackboneBandwidth float64
	// RegionalBandwidth is the relay→DC bandwidth.
	RegionalBandwidth float64
	// ReserveStreams applies the paper's 40/60 split on every link.
	ReserveStreams bool
	// MonitorInterval enables the centralized monitor when > 0.
	MonitorInterval time.Duration
}

// DefaultTopologyConfig mirrors the paper's deployment at simulation
// scale: 1 Gbps-class links (125 MB/s), 24 relays, 2 DCs per region.
func DefaultTopologyConfig() TopologyConfig {
	return TopologyConfig{
		RegionNames:       []string{"north", "east", "south"},
		RelaysPerRegion:   24,
		DCsPerRegion:      2,
		BuilderUplink:     125e6,
		BackboneBandwidth: 125e6,
		RegionalBandwidth: 125e6,
		ReserveStreams:    true,
		MonitorInterval:   time.Second,
	}
}

// classReservation returns the paper's 40/60 reservation map.
func classReservation() map[netsim.Class]float64 {
	return map[netsim.Class]float64{
		netsim.ClassSummary:  0.4,
		netsim.ClassInverted: 0.6,
	}
}

// streamClass maps a stream type onto its traffic class.
func streamClass(t StreamType) netsim.Class {
	if t == StreamSummary {
		return netsim.ClassSummary
	}
	return netsim.ClassInverted
}

// BuildTopology constructs the fabric on a fresh network.
func BuildTopology(cfg TopologyConfig) (*Topology, error) {
	if len(cfg.RegionNames) == 0 {
		cfg = DefaultTopologyConfig()
	}
	n := netsim.New()
	top := &Topology{Net: n, Builder: "builder"}
	n.AddNode(top.Builder)
	var reservation map[netsim.Class]float64
	if cfg.ReserveStreams {
		reservation = classReservation()
	}
	for _, name := range cfg.RegionNames {
		region := Region{Name: name}
		for i := 0; i < cfg.RelaysPerRegion; i++ {
			id := netsim.NodeID(fmt.Sprintf("%s-relay-%02d", name, i))
			n.AddNode(id)
			region.Relays = append(region.Relays, id)
			if _, err := n.AddLink(top.Builder, id, cfg.BuilderUplink, reservation); err != nil {
				return nil, err
			}
		}
		for i := 0; i < cfg.DCsPerRegion; i++ {
			id := netsim.NodeID(fmt.Sprintf("%s-dc-%d", name, i+1))
			n.AddNode(id)
			region.DCs = append(region.DCs, id)
			for _, relay := range region.Relays {
				if _, err := n.AddLink(relay, id, cfg.RegionalBandwidth, reservation); err != nil {
					return nil, err
				}
			}
		}
		top.Regions = append(top.Regions, region)
	}
	// Backbone: every pair of relay groups interconnects via their
	// first relays (both directions).
	for i := range top.Regions {
		for j := range top.Regions {
			if i == j {
				continue
			}
			from := top.Regions[i].Relays[0]
			to := top.Regions[j].Relays[0]
			if _, err := n.AddLink(from, to, cfg.BackboneBandwidth, reservation); err != nil {
				return nil, err
			}
		}
	}
	if cfg.MonitorInterval > 0 {
		top.Monitor = netsim.NewMonitor(n, cfg.MonitorInterval, 0.3)
	}
	return top, nil
}

// AllDCs lists every data center in the fabric.
func (t *Topology) AllDCs() []netsim.NodeID {
	var out []netsim.NodeID
	for _, r := range t.Regions {
		out = append(out, r.DCs...)
	}
	return out
}

// --- shipping --------------------------------------------------------------

// Delivery records one slice's arrival at one data center.
type Delivery struct {
	Slice     *Slice
	DC        netsim.NodeID
	Available time.Duration // when the slice was ready at the builder
	Arrived   time.Duration
	Retries   int
}

// Late reports whether the delivery exceeded the deadline (the paper's
// miss criterion: more than one hour from availability to arrival).
func (d Delivery) Late(deadline time.Duration) bool {
	return d.Arrived-d.Available > deadline
}

// ShipperStats aggregates transmission results.
type ShipperStats struct {
	SlicesSent     int64
	Deliveries     int64
	Retransmits    int64
	BytesSent      float64 // network bytes including retransmissions
	PayloadBytes   float64 // slice bytes delivered (once per DC)
	CorruptionSeen int64
	Repairs        int64
	// BackboneDetours counts slices sourced from a peer region's relay
	// instead of the congested builder uplink.
	BackboneDetours int64
}

// Shipper drives slices from the builder through relay groups to every
// data center, re-verifying checksums at each hop and retransmitting on
// corruption.
type Shipper struct {
	Top *Topology
	// CorruptProb is the per-hop probability of in-flight corruption
	// (failure injection for Fig. 10b).
	CorruptProb float64
	// MaxRetries bounds per-hop retransmissions.
	MaxRetries int
	// Deadline is the miss-ratio deadline (paper: one hour).
	Deadline time.Duration

	rng        *rand.Rand
	stats      ShipperStats
	met        shipMetrics
	deliveries []Delivery
	relayRR    map[string]int // per-region round-robin cursor
	traceCtx   metrics.SpanContext
	tracer     *metrics.Tracer
	// holders tracks which relays cached each slice ("20-30 relay nodes
	// caching and relaying", paper §2.2): when a builder uplink is
	// congested, the slice can be sourced from a peer region's relay
	// over the backbone instead.
	holders map[*Slice][]netsim.NodeID
}

// NewShipper creates a shipper with deterministic failure injection.
func NewShipper(top *Topology, seed int64) *Shipper {
	return &Shipper{
		Top:        top,
		MaxRetries: 4,
		Deadline:   time.Hour,
		rng:        rand.New(rand.NewSource(seed)),
		relayRR:    make(map[string]int),
		holders:    make(map[*Slice][]netsim.NodeID),
	}
}

// BindTrace attaches subsequent slice deliveries to a distributed
// trace: each one is recorded on tracer as a "bifrost.ship.delivery"
// span parented under sc, whose duration is the delivery's VIRTUAL
// availability→arrival time (simulated network time, not wall clock —
// hence a hand-assembled record rather than a live span). Bind the zero
// SpanContext (with a nil tracer) to detach. Not safe concurrently with
// shipping; the publish path binds around its ship phase.
func (s *Shipper) BindTrace(sc metrics.SpanContext, tracer *metrics.Tracer) {
	s.traceCtx = sc
	s.tracer = tracer
}

// recordDelivery emits the per-delivery trace span when a trace is
// bound.
func (s *Shipper) recordDelivery(d Delivery) {
	if s.tracer == nil || !s.traceCtx.Valid() {
		return
	}
	s.tracer.RecordSpan(metrics.SpanRecord{
		Name: "bifrost.ship.delivery", Start: time.Now(), Dur: d.Arrived - d.Available,
		TraceID: s.traceCtx.TraceID, SpanID: metrics.NewSpanID(), ParentID: s.traceCtx.SpanID,
		Note: fmt.Sprintf("dc=%s retries=%d", d.DC, d.Retries),
	})
}

// pickRelay selects the relay for a region: the monitor's least-loaded
// candidate when available, round-robin otherwise.
func (s *Shipper) pickRelay(region Region) netsim.NodeID {
	if s.Top.Monitor != nil {
		best := region.Relays[0]
		bestAvail := -1.0
		// Sample a few candidates round-robin to avoid O(relays) scans.
		start := s.relayRR[region.Name]
		for k := 0; k < 4; k++ {
			relay := region.Relays[(start+k)%len(region.Relays)]
			avail := s.Top.Monitor.PredictedAvailable(s.Top.Net, s.Top.Builder, relay)
			if avail > bestAvail {
				best, bestAvail = relay, avail
			}
		}
		s.relayRR[region.Name] = (start + 1) % len(region.Relays)
		return best
	}
	i := s.relayRR[region.Name]
	s.relayRR[region.Name] = (i + 1) % len(region.Relays)
	return region.Relays[i]
}

// ShipToRegion schedules delivery of one slice to every DC of the region:
// builder → relay, then relay → each DC. Each hop verifies the checksum
// and retransmits on corruption, up to MaxRetries.
func (s *Shipper) ShipToRegion(slice *Slice, region Region, onDelivered func(d Delivery)) error {
	return s.ShipToRegionDCs(slice, region, region.DCs, onDelivered)
}

// ShipToRegionDCs is ShipToRegion restricted to a subset of the region's
// data centers — the paper stores summary indices in only one DC per
// region while inverted indices go to all six.
func (s *Shipper) ShipToRegionDCs(slice *Slice, region Region, dcs []netsim.NodeID, onDelivered func(d Delivery)) error {
	source, relay := s.pickSource(slice, region)
	available := s.Top.Net.Now()
	s.stats.SlicesSent++
	s.met.slices.Inc()
	return s.sendHop(slice, source, relay, 0, func(retries int, now time.Duration) {
		s.holders[slice] = append(s.holders[slice], relay)
		for _, dc := range dcs {
			dc := dc
			err := s.sendHop(slice, relay, dc, 0, func(moreRetries int, now time.Duration) {
				d := Delivery{
					Slice: slice, DC: dc,
					Available: available, Arrived: now,
					Retries: retries + moreRetries,
				}
				s.deliveries = append(s.deliveries, d)
				s.stats.Deliveries++
				s.stats.PayloadBytes += float64(slice.Size())
				s.met.deliveries.Inc()
				s.met.payloadBytes.Add(slice.Size())
				s.recordDelivery(d)
				if onDelivered != nil {
					onDelivered(d)
				}
			})
			if err != nil {
				// Link down right now: retry after a pause.
				s.retryLater(slice, relay, dc, available, onDelivered)
			}
		}
	})
}

// retryLater reschedules a failed hop after a back-off.
func (s *Shipper) retryLater(slice *Slice, from, to netsim.NodeID, available time.Duration, onDelivered func(d Delivery)) {
	s.Top.Net.After(30*time.Second, func(now time.Duration) {
		err := s.sendHop(slice, from, to, 1, func(retries int, now time.Duration) {
			d := Delivery{Slice: slice, DC: to, Available: available, Arrived: now, Retries: retries}
			s.deliveries = append(s.deliveries, d)
			s.stats.Deliveries++
			s.stats.PayloadBytes += float64(slice.Size())
			s.met.deliveries.Inc()
			s.met.payloadBytes.Add(slice.Size())
			s.recordDelivery(d)
			if onDelivered != nil {
				onDelivered(d)
			}
		})
		if err != nil {
			s.retryLater(slice, from, to, available, onDelivered)
		}
	})
}

// sendHop transfers the slice over one hop; on arrival the receiver
// recalculates the checksum and, if the slice was damaged in flight,
// requests a retransmission (paper §3).
func (s *Shipper) sendHop(slice *Slice, from, to netsim.NodeID, attempt int, onOK func(retries int, now time.Duration)) error {
	_, err := s.Top.Net.SendBetween(from, to, streamClass(slice.Stream), float64(slice.Size()),
		func(tr *netsim.Transfer, now time.Duration) {
			if tr.Failed != nil {
				s.retryOrRepair(slice, from, to, attempt, onOK)
				return
			}
			s.stats.BytesSent += tr.Size
			s.met.bytesSent.Add(int64(tr.Size))
			// Simulated in-flight corruption, detected by the receiver's
			// checksum pass.
			if s.CorruptProb > 0 && s.rng.Float64() < s.CorruptProb {
				slice.Corrupt()
			}
			if !slice.Verify() {
				s.stats.CorruptionSeen++
				slice.Repair()
				s.stats.Retransmits++
				s.met.checksumFail.Inc()
				s.met.retransmits.Inc()
				s.retryOrRepair(slice, from, to, attempt, onOK)
				return
			}
			onOK(attempt, now)
		})
	return err
}

// retryOrRepair retransmits promptly while the attempt budget lasts, then
// falls back to the slow "repair process" the paper mentions: a warning
// is raised and the slice is re-sent after a long back-off with a fresh
// budget. Deliveries that go through repair are typically late, which is
// exactly how misses accrue in Fig. 10b.
func (s *Shipper) retryOrRepair(slice *Slice, from, to netsim.NodeID, attempt int, onOK func(retries int, now time.Duration)) {
	if attempt < s.MaxRetries {
		s.retryHop(slice, from, to, attempt+1, onOK)
		return
	}
	s.stats.Repairs++
	s.met.repairs.Inc()
	s.Top.Net.After(2*time.Minute, func(now time.Duration) {
		if err := s.sendHop(slice, from, to, 0, onOK); err != nil {
			s.retryLater2(slice, from, to, 0, onOK)
		}
	})
}

// retryHop schedules a hop retransmission immediately (virtual time).
func (s *Shipper) retryHop(slice *Slice, from, to netsim.NodeID, attempt int, onOK func(retries int, now time.Duration)) {
	s.Top.Net.After(time.Second, func(now time.Duration) {
		if err := s.sendHop(slice, from, to, attempt, onOK); err != nil {
			s.retryLater2(slice, from, to, attempt, onOK)
		}
	})
}

func (s *Shipper) retryLater2(slice *Slice, from, to netsim.NodeID, attempt int, onOK func(retries int, now time.Duration)) {
	s.Top.Net.After(30*time.Second, func(now time.Duration) {
		if err := s.sendHop(slice, from, to, attempt, onOK); err != nil {
			s.retryLater2(slice, from, to, attempt, onOK)
		}
	})
}

// pickSource chooses where the region fetches the slice from: the
// builder by default, or — when the monitor predicts the builder uplink
// is substantially more congested than the backbone — a peer region's
// relay that already caches the slice (paper §2.2: "we have
// opportunities to optimize the data transmission by flexibly arranging
// data streams to circumvent the channels sustaining high traffic").
// Backbone detours enter through the region's gateway relay (the one
// the inter-region links terminate at).
func (s *Shipper) pickSource(slice *Slice, region Region) (source, relay netsim.NodeID) {
	relay = s.pickRelay(region)
	source = s.Top.Builder
	if s.Top.Monitor == nil {
		return source, relay
	}
	gateway := region.Relays[0]
	builderBW := s.Top.Monitor.PredictedAvailable(s.Top.Net, s.Top.Builder, relay)
	for _, holder := range s.holders[slice] {
		if holder == gateway {
			continue // already here
		}
		if _, ok := s.Top.Net.LinkBetween(holder, gateway); !ok {
			continue
		}
		peerBW := s.Top.Monitor.PredictedAvailable(s.Top.Net, holder, gateway)
		if peerBW > 2*builderBW {
			s.stats.BackboneDetours++
			s.met.detours.Inc()
			return holder, gateway
		}
	}
	return source, relay
}

// ShipEverywhere ships the slice to all regions.
func (s *Shipper) ShipEverywhere(slice *Slice, onDelivered func(d Delivery)) error {
	for _, region := range s.Top.Regions {
		if err := s.ShipToRegion(slice, region, onDelivered); err != nil {
			return err
		}
	}
	return nil
}

// Stats returns a copy of the shipper counters.
func (s *Shipper) Stats() ShipperStats { return s.stats }

// Deliveries returns all recorded deliveries.
func (s *Shipper) Deliveries() []Delivery {
	return append([]Delivery(nil), s.deliveries...)
}

// MissRatio computes the fraction of deliveries that exceeded the
// deadline — Fig. 10b's metric (SLO: 0.6%, DirectLoad achieves 0.24%).
func (s *Shipper) MissRatio() float64 {
	if len(s.deliveries) == 0 {
		return 0
	}
	late := 0
	for _, d := range s.deliveries {
		if d.Late(s.Deadline) {
			late++
		}
	}
	return float64(late) / float64(len(s.deliveries))
}
