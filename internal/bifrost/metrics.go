package bifrost

import "directload/internal/metrics"

// dedupMetrics holds the deduper's registry handles; all nil without a
// registry, making every record site a guarded no-op.
type dedupMetrics struct {
	keys        *metrics.Counter
	hits        *metrics.Counter
	bytes       *metrics.Counter
	bytesElided *metrics.Counter
}

// SetMetrics attaches a registry to the deduper. Call before Process;
// nil detaches (subsequent observations are no-ops).
func (d *Deduper) SetMetrics(reg *metrics.Registry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.met = dedupMetrics{
		keys:        reg.Counter("bifrost.dedup.keys"),
		hits:        reg.Counter("bifrost.dedup.hits"),
		bytes:       reg.Counter("bifrost.dedup.bytes"),
		bytesElided: reg.Counter("bifrost.dedup.bytes_elided"),
	}
}

// shipMetrics holds the shipper's registry handles.
type shipMetrics struct {
	slices       *metrics.Counter
	deliveries   *metrics.Counter
	bytesSent    *metrics.Counter
	payloadBytes *metrics.Counter
	retransmits  *metrics.Counter
	checksumFail *metrics.Counter
	repairs      *metrics.Counter
	detours      *metrics.Counter
}

// SetMetrics attaches a registry to the shipper. The shipper is driven
// from the netsim event loop (single goroutine), so no locking is
// needed beyond the registry's own.
func (s *Shipper) SetMetrics(reg *metrics.Registry) {
	s.met = shipMetrics{
		slices:       reg.Counter("bifrost.ship.slices"),
		deliveries:   reg.Counter("bifrost.ship.deliveries"),
		bytesSent:    reg.Counter("bifrost.ship.bytes_sent"),
		payloadBytes: reg.Counter("bifrost.ship.payload_bytes"),
		retransmits:  reg.Counter("bifrost.ship.retransmits"),
		checksumFail: reg.Counter("bifrost.ship.checksum_failures"),
		repairs:      reg.Counter("bifrost.ship.repairs"),
		detours:      reg.Counter("bifrost.ship.backbone_detours"),
	}
}
