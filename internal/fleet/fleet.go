// Package fleet is the networked Mint: a client-side shard router that
// runs the paper's regional store protocol (§2.3 — hash→group
// placement, R-way replication, parallel reads) over real qindbd nodes
// using the v2 wire stack (pipelining, OpBatch, trace propagation)
// instead of the in-process simulation in internal/mint.
//
// Placement is the exact math the simulation uses (mint.Placement), so
// the two paths cannot drift. Writes are quorum writes: each entry must
// be acknowledged by W of its R replicas, shipped per node as batched
// frames with retry/backoff; writes owed to an unreachable replica land
// in a bounded hinted-handoff queue that drains when the health prober
// sees the node again. Reads are the paper's parallel reads in
// tail-latency form: the primary replica is asked first, a hedge fires
// at a p99-derived delay (from the live read-latency histogram), a miss
// or transport error fans out immediately, and the first successful
// answer wins — with read-repair of any replica that was seen missing
// the key. A per-node circuit breaker, fed by request outcomes and a
// background prober, keeps known-dead replicas out of the request path.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"directload/internal/core"
	"directload/internal/metrics"
	"directload/internal/mint"
	"directload/internal/server"
)

// Router errors.
var (
	ErrNoNodes     = errors.New("fleet: no nodes configured")
	ErrQuorum      = errors.New("fleet: write quorum not reached")
	ErrBreakerOpen = errors.New("fleet: circuit breaker open")
	ErrClosed      = errors.New("fleet: closed")
	ErrAllReplicas = errors.New("fleet: all replicas failed")
)

// Config sizes and tunes a fleet router.
type Config struct {
	// Groups lists the replication groups: one slice of node TCP
	// addresses per group. Keys map onto groups by hash, so group
	// membership can grow without moving stored data (paper §2.3).
	Groups [][]string
	// NodeIDs optionally names each node for placement (same shape as
	// Groups). Placement hashes IDs, not addresses, so a node keeps its
	// replica assignments across address changes. Defaults to Groups.
	NodeIDs [][]string
	// Replicas per key (paper: 3). Defaults to 3, and must not exceed
	// the smallest group.
	Replicas int
	// WriteQuorum is W: the replicas that must ack a write (default
	// majority of Replicas).
	WriteQuorum int
	// HedgeAfter is the hedge delay used until the read-latency
	// histogram has enough samples to derive one (default 2ms).
	HedgeAfter time.Duration
	// HedgeQuantile picks the latency quantile that arms the hedge
	// timer once live data exists (default 0.99).
	HedgeQuantile float64
	// WriteRetries is how many times a failed per-replica batch write is
	// retried (with exponential backoff) before hinting (default 2).
	WriteRetries int
	// RetryBackoff is the base backoff between write retries (default 5ms).
	RetryBackoff time.Duration
	// HandoffLimit bounds each node's hinted-handoff queue in hints
	// (default 4096); overflow is dropped and counted.
	HandoffLimit int
	// ProbeInterval paces the background health prober (default 500ms;
	// negative disables it — ProbeNow still works).
	ProbeInterval time.Duration
	// BreakerThreshold is the consecutive transport failures that trip a
	// node's breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker rejects requests
	// before admitting a half-open trial (default 1s).
	BreakerCooldown time.Duration
	// Metrics, when non-nil, receives the fleet.* metrics and traces.
	Metrics *metrics.Registry
	// SLO, when non-nil, is fed one good event per successful read and
	// one bad event per fleet-wide miss — the read-availability
	// objective the paper reports (0.24 % observed vs 0.6 % allowed).
	SLO *metrics.SLO
	// Events, when non-nil, receives breaker, handoff and node up/down
	// lifecycle events.
	Events *metrics.EventLog
	// OpsAddrs are the nodes' operator HTTP addresses (same order as
	// the flattened Groups is not required — any covering set works),
	// used by CollectTrace to aggregate spans across the fleet.
	OpsAddrs []string
	// DialOpts apply to every node client (pool size, timeout, ...).
	DialOpts []server.DialOption
}

// Entry is one record of a version publish.
type Entry struct {
	Key   []byte
	Value []byte
	// Dedup marks a value-stripped record whose payload lives in an
	// older version (resolved node-side via traceback).
	Dedup bool
}

// NodeStatus is one node's operator-visible state.
type NodeStatus struct {
	ID               string `json:"id"`
	Addr             string `json:"addr"`
	Group            int    `json:"group"`
	Breaker          string `json:"breaker"`
	ConsecutiveFails int    `json:"consecutive_failures"`
	HandoffDepth     int    `json:"handoff_depth"`
	HandoffDropped   int64  `json:"handoff_dropped,omitempty"`
	LastError        string `json:"last_error,omitempty"`
}

// Status is the fleet snapshot served by /fleet and `qindbctl fleet
// status`.
type Status struct {
	Groups       int          `json:"groups"`
	Replicas     int          `json:"replicas"`
	WriteQuorum  int          `json:"write_quorum"`
	HedgeDelayUs int64        `json:"hedge_delay_us"`
	Nodes        []NodeStatus `json:"nodes"`
}

// fleetMetrics holds the fleet.* registry handles; all nil-safe.
type fleetMetrics struct {
	publishLat     *metrics.Histogram
	publishes      *metrics.Counter
	quorumFails    *metrics.Counter
	readLat        *metrics.Histogram // drives the hedge delay
	reads          *metrics.Counter
	hedges         *metrics.Counter
	hedgeWins      *metrics.Counter
	repairs        *metrics.Counter
	misses         *metrics.Counter
	handoffQueued  *metrics.Counter
	handoffDropped *metrics.Counter
	handoffDrained *metrics.Counter
	handoffDepth   *metrics.Gauge
	breakerOpens   *metrics.Counter
}

func newFleetMetrics(reg *metrics.Registry) fleetMetrics {
	return fleetMetrics{
		publishLat:     reg.Histogram("fleet.publish.latency_us"),
		publishes:      reg.Counter("fleet.publish.versions"),
		quorumFails:    reg.Counter("fleet.publish.quorum_failures"),
		readLat:        reg.Histogram("fleet.read.latency_us"),
		reads:          reg.Counter("fleet.read.requests"),
		hedges:         reg.Counter("fleet.read.hedges"),
		hedgeWins:      reg.Counter("fleet.read.hedge_wins"),
		repairs:        reg.Counter("fleet.read.repairs"),
		misses:         reg.Counter("fleet.read.misses"),
		handoffQueued:  reg.Counter("fleet.handoff.queued"),
		handoffDropped: reg.Counter("fleet.handoff.dropped"),
		handoffDrained: reg.Counter("fleet.handoff.drained"),
		handoffDepth:   reg.Gauge("fleet.handoff.depth"),
		breakerOpens:   reg.Counter("fleet.breaker.opens"),
	}
}

// hedgeMinSamples is how many read latencies must exist before the
// hedge delay trusts the histogram over Config.HedgeAfter.
const hedgeMinSamples = 32

// minHedgeDelay floors the derived hedge delay so a burst of cached
// sub-microsecond reads cannot turn every read into a fan-out.
const minHedgeDelay = 200 * time.Microsecond

// Fleet routes reads and writes onto replication groups of real TCP
// storage nodes. All methods are safe for concurrent use.
type Fleet struct {
	cfg    Config
	place  mint.Placement
	groups [][]*node
	nodes  []*node
	byID   map[string]*node

	reg    *metrics.Registry
	met    fleetMetrics
	slo    *metrics.SLO
	events *metrics.EventLog

	wg     sync.WaitGroup // prober + async repairs
	stop   chan struct{}
	closed atomic.Bool
	once   sync.Once
}

// New validates cfg and builds the router. Nodes are dialed lazily, so
// a node that is down at construction time costs nothing until it heals
// — New itself performs no I/O.
func New(cfg Config) (*Fleet, error) {
	if len(cfg.Groups) == 0 {
		return nil, ErrNoNodes
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 3
	}
	if cfg.WriteQuorum <= 0 {
		cfg.WriteQuorum = cfg.Replicas/2 + 1
	}
	if cfg.WriteQuorum > cfg.Replicas {
		return nil, fmt.Errorf("fleet: write quorum %d > %d replicas", cfg.WriteQuorum, cfg.Replicas)
	}
	if cfg.NodeIDs == nil {
		cfg.NodeIDs = cfg.Groups
	}
	if len(cfg.NodeIDs) != len(cfg.Groups) {
		return nil, fmt.Errorf("fleet: %d ID groups for %d address groups", len(cfg.NodeIDs), len(cfg.Groups))
	}
	if cfg.HedgeAfter <= 0 {
		cfg.HedgeAfter = 2 * time.Millisecond
	}
	if cfg.HedgeQuantile <= 0 || cfg.HedgeQuantile >= 1 {
		cfg.HedgeQuantile = 0.99
	}
	if cfg.WriteRetries < 0 {
		cfg.WriteRetries = 0
	} else if cfg.WriteRetries == 0 {
		cfg.WriteRetries = 2
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 5 * time.Millisecond
	}
	if cfg.HandoffLimit <= 0 {
		cfg.HandoffLimit = 4096
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = time.Second
	}
	f := &Fleet{
		cfg:    cfg,
		place:  mint.Placement{Replicas: cfg.Replicas},
		byID:   make(map[string]*node),
		reg:    cfg.Metrics,
		met:    newFleetMetrics(cfg.Metrics),
		slo:    cfg.SLO,
		events: cfg.Events,
		stop:   make(chan struct{}),
	}
	for g, addrs := range cfg.Groups {
		if len(addrs) < cfg.Replicas {
			return nil, fmt.Errorf("fleet: group %d has %d nodes < %d replicas", g, len(addrs), cfg.Replicas)
		}
		if len(cfg.NodeIDs[g]) != len(addrs) {
			return nil, fmt.Errorf("fleet: group %d has %d IDs for %d addresses", g, len(cfg.NodeIDs[g]), len(addrs))
		}
		var members []*node
		for i, addr := range addrs {
			n := &node{id: cfg.NodeIDs[g][i], addr: addr, group: g, opts: cfg.DialOpts}
			if _, dup := f.byID[n.id]; dup {
				return nil, fmt.Errorf("fleet: duplicate node id %q", n.id)
			}
			f.byID[n.id] = n
			members = append(members, n)
			f.nodes = append(f.nodes, n)
		}
		f.groups = append(f.groups, members)
	}
	if cfg.ProbeInterval > 0 {
		f.wg.Add(1)
		go f.proberLoop()
	}
	return f, nil
}

// Close stops the prober, waits for in-flight repairs, and tears down
// every node client.
func (f *Fleet) Close() error {
	var closeErr error
	f.once.Do(func() {
		f.closed.Store(true)
		close(f.stop)
		f.wg.Wait()
		var errs []error
		for _, n := range f.nodes {
			if err := n.close(); err != nil {
				errs = append(errs, err)
			}
		}
		closeErr = errors.Join(errs...)
	})
	return closeErr
}

// ReplicasFor returns the key's group index and its replica node IDs in
// placement order (primary first) — byte-identical to what the
// simulated mint.Cluster computes for the same member IDs.
func (f *Fleet) ReplicasFor(key []byte) (int, []string) {
	g := f.place.Group(key, len(f.groups))
	members := f.groups[g]
	ids := make([]string, len(members))
	for i, n := range members {
		ids[i] = n.id
	}
	return g, f.place.ReplicasFor(key, ids)
}

// replicaNodes resolves the key's replica set to nodes.
func (f *Fleet) replicaNodes(key []byte) []*node {
	_, ids := f.ReplicasFor(key)
	out := make([]*node, len(ids))
	for i, id := range ids {
		out[i] = f.byID[id]
	}
	return out
}

// Status snapshots the fleet for operators.
func (f *Fleet) Status() Status {
	st := Status{
		Groups:       len(f.groups),
		Replicas:     f.cfg.Replicas,
		WriteQuorum:  f.cfg.WriteQuorum,
		HedgeDelayUs: int64(f.hedgeDelay() / time.Microsecond),
	}
	for _, n := range f.nodes {
		st.Nodes = append(st.Nodes, n.status())
	}
	return st
}

// hedgeDelay is how long the primary read gets before a hedge fires:
// the live p99 (HedgeQuantile) of fleet reads once enough samples
// exist, floored so cache-hot reads cannot hedge constantly, and the
// configured HedgeAfter until then.
func (f *Fleet) hedgeDelay() time.Duration {
	if h := f.met.readLat; h.Count() >= hedgeMinSamples {
		if p := h.Quantile(f.cfg.HedgeQuantile); p > 0 {
			d := time.Duration(p * float64(time.Microsecond))
			if d < minHedgeDelay {
				d = minHedgeDelay
			}
			return d
		}
	}
	return f.cfg.HedgeAfter
}

// transportErr reports whether err indicates node trouble (dial/IO/
// deadline) rather than a logical reply (engine status, batch sub-op
// failure) or the caller's own cancellation. Only transport errors feed
// the breaker and justify hinted handoff.
func transportErr(err error) bool {
	var se *server.StatusError
	if errors.As(err, &se) {
		return false
	}
	var be *server.BatchError
	if errors.As(err, &be) {
		return false
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	return true
}

// nodeFailure routes a transport failure into the node's breaker,
// emitting breaker.open when this failure tripped it.
func (f *Fleet) nodeFailure(n *node, err error) {
	if n.onFailure(err, f.cfg.BreakerThreshold, f.cfg.BreakerCooldown) {
		f.met.breakerOpens.Inc()
		f.events.Emitf(metrics.EventBreakerOpen, n.id, 0,
			"%d consecutive transport failures: %v", f.cfg.BreakerThreshold, err)
	}
}

// nodeSuccess routes a healthy response into the node's breaker,
// emitting breaker.close when the node was recovering.
func (f *Fleet) nodeSuccess(n *node) {
	if n.onSuccess() {
		f.events.Emit(metrics.EventBreakerClose, n.id, 0, "")
	}
}

// nodeAvailable asks the node's breaker to admit a request, emitting
// breaker.half_open when this call started a cooldown trial.
func (f *Fleet) nodeAvailable(n *node) bool {
	admit, trial := n.available(f.cfg.BreakerCooldown)
	if trial {
		f.events.Emit(metrics.EventBreakerHalfOpen, n.id, 0, "cooldown trial")
	}
	return admit
}

// queueHandoff queues a node's owed hints, keeping the handoff metrics
// and event log in step.
func (f *Fleet) queueHandoff(n *node, hs []hint) {
	queued, dropped := n.queueHints(hs, f.cfg.HandoffLimit)
	f.met.handoffQueued.Add(int64(queued))
	f.met.handoffDropped.Add(int64(dropped))
	f.met.handoffDepth.Add(int64(queued))
	f.events.Emitf(metrics.EventHandoffEnqueue, n.id, 0, "queued=%d dropped=%d", queued, dropped)
}

// --- writes -----------------------------------------------------------------

// PublishVersion writes every entry to its R replicas and succeeds when
// each entry was acknowledged by at least WriteQuorum of them. Entries
// are grouped per node and shipped as OpBatch frames (one batcher per
// replica, all replicas in parallel); a replica that stays unreachable
// after the retries gets its share queued as hinted handoff, to drain
// when the prober sees it healthy again. Inside a trace the publish is
// one timeline: fleet.publish → per-replica fleet.replica.write →
// client.batch.flush → the remote server's handler spans.
func (f *Fleet) PublishVersion(ctx context.Context, version uint64, entries []Entry) (err error) {
	ctx, end := f.reg.StartSpanNote(ctx, "fleet.publish",
		fmt.Sprintf("v%d entries=%d", version, len(entries)))
	defer func() { end(err) }()
	if f.closed.Load() {
		return ErrClosed
	}
	if len(entries) == 0 {
		return nil
	}
	start := time.Now()

	// Place every entry: per-node index lists, iteration order fixed.
	assign := make(map[*node][]int)
	var order []*node
	for i := range entries {
		for _, n := range f.replicaNodes(entries[i].Key) {
			if assign[n] == nil {
				order = append(order, n)
			}
			assign[n] = append(assign[n], i)
		}
	}

	acks := make([]int32, len(entries))
	nodeErrs := make([]error, len(order))
	var wg sync.WaitGroup
	for oi, n := range order {
		wg.Add(1)
		go func(oi int, n *node, idxs []int) {
			defer wg.Done()
			if werr := f.writeNode(ctx, n, version, entries, idxs); werr != nil {
				nodeErrs[oi] = fmt.Errorf("fleet: v%d to %s: %w", version, n.id, werr)
				return
			}
			for _, i := range idxs {
				atomic.AddInt32(&acks[i], 1)
			}
		}(oi, n, assign[n])
	}
	wg.Wait()

	short := 0
	var firstKey []byte
	for i := range entries {
		if int(atomic.LoadInt32(&acks[i])) < f.cfg.WriteQuorum {
			if short == 0 {
				firstKey = entries[i].Key
			}
			short++
		}
	}
	if short > 0 {
		f.met.quorumFails.Inc()
		return fmt.Errorf("%w: %d/%d entries below W=%d (first key %q): %w",
			ErrQuorum, short, len(entries), f.cfg.WriteQuorum, firstKey, errors.Join(nodeErrs...))
	}
	f.met.publishes.Inc()
	f.met.publishLat.Observe(float64(time.Since(start)) / float64(time.Microsecond))
	return nil
}

// writeNode ships one replica's share of a publish: a batched write
// with retry/backoff, falling back to hinted handoff when the node
// stays unreachable. A breaker-open node is hinted immediately — no
// wire traffic — which is what keeps one dead replica from slowing
// every publish to its timeout.
func (f *Fleet) writeNode(ctx context.Context, n *node, version uint64, entries []Entry, idxs []int) (err error) {
	_, end := f.reg.ContinueSpanNote(ctx, "fleet.replica.write",
		fmt.Sprintf("%s ops=%d", n.id, len(idxs)))
	defer func() { end(err) }()
	if !f.nodeAvailable(n) {
		f.hintPuts(n, version, entries, idxs)
		return fmt.Errorf("%w (%s)", ErrBreakerOpen, n.id)
	}
	for attempt := 0; ; attempt++ {
		err = f.tryWrite(ctx, n, version, entries, idxs)
		if err == nil {
			f.nodeSuccess(n)
			return nil
		}
		if !transportErr(err) {
			// The node answered: a sub-op failed server-side. Retrying or
			// hinting the same bytes cannot fix that; surface it.
			f.nodeSuccess(n)
			return err
		}
		f.nodeFailure(n, err)
		if attempt >= f.cfg.WriteRetries || ctx.Err() != nil {
			break
		}
		select {
		case <-time.After(f.cfg.RetryBackoff << attempt):
		case <-ctx.Done():
			f.hintPuts(n, version, entries, idxs)
			return ctx.Err()
		}
	}
	f.hintPuts(n, version, entries, idxs)
	return err
}

// tryWrite is one batched write attempt to one node.
func (f *Fleet) tryWrite(ctx context.Context, n *node, version uint64, entries []Entry, idxs []int) error {
	cl, err := n.client()
	if err != nil {
		return err
	}
	b := cl.Batcher()
	for _, i := range idxs {
		if err := b.Put(ctx, entries[i].Key, version, entries[i].Value, entries[i].Dedup); err != nil {
			return err
		}
	}
	return b.Flush(ctx)
}

// hintPuts queues a replica's missed share of a publish for handoff.
func (f *Fleet) hintPuts(n *node, version uint64, entries []Entry, idxs []int) {
	hs := make([]hint, 0, len(idxs))
	for _, i := range idxs {
		op := uint8(server.OpPut)
		if entries[i].Dedup {
			op = server.OpPutDedup
		}
		hs = append(hs, hint{op: op, key: entries[i].Key, version: version, value: entries[i].Value})
	}
	f.queueHandoff(n, hs)
}

// DropVersion retires a version on every node. Unreachable nodes get
// the drop queued as a hint so retention converges when they heal.
func (f *Fleet) DropVersion(ctx context.Context, version uint64) error {
	if f.closed.Load() {
		return ErrClosed
	}
	errs := make([]error, len(f.nodes))
	var wg sync.WaitGroup
	for i, n := range f.nodes {
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			hintDrop := func() {
				f.queueHandoff(n, []hint{{op: server.OpDropVersion, version: version}})
			}
			if !f.nodeAvailable(n) {
				hintDrop()
				return
			}
			cl, err := n.client()
			if err == nil {
				err = cl.DropVersionContext(ctx, version)
			}
			if err == nil {
				f.nodeSuccess(n)
				return
			}
			if transportErr(err) {
				f.nodeFailure(n, err)
				hintDrop()
				return
			}
			errs[i] = fmt.Errorf("fleet: dropping v%d on %s: %w", version, n.id, err)
		}(i, n)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// --- reads ------------------------------------------------------------------

// Get reads (key, version) with hedged parallel requests: the primary
// replica first; a definitive miss or transport error fans out to the
// next replica immediately, and a hedge timer (see hedgeDelay) fans out
// anyway when the primary is merely slow. The first successful answer
// wins, and any replica that was seen answering "not found" is
// read-repaired in the background with the winning value.
func (f *Fleet) Get(ctx context.Context, key []byte, version uint64) (val []byte, err error) {
	ctx, end := f.reg.StartSpanNote(ctx, "fleet.get", fmt.Sprintf("v%d", version))
	defer func() { end(err) }()
	if f.closed.Load() {
		return nil, ErrClosed
	}
	f.met.reads.Inc()
	replicas := f.replicaNodes(key)
	// Breaker-open replicas go to the back of the line: still reachable
	// as a last resort, never first choice.
	ordered := make([]*node, 0, len(replicas))
	var skipped []*node
	for _, n := range replicas {
		if f.nodeAvailable(n) {
			ordered = append(ordered, n)
		} else {
			skipped = append(skipped, n)
		}
	}
	ordered = append(ordered, skipped...)
	if len(ordered) == 0 {
		return nil, ErrNoNodes
	}

	type result struct {
		n   *node
		i   int
		val []byte
		err error
	}
	resCh := make(chan result, len(ordered))
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	start := time.Now()
	launched := 0
	launch := func() {
		i := launched
		n := ordered[i]
		launched++
		go func() {
			rctx, endR := f.reg.ContinueSpanNote(gctx, "fleet.replica.get", n.id)
			var rv []byte
			cl, rerr := n.client()
			if rerr == nil {
				rv, rerr = cl.GetContext(rctx, key, version)
			}
			endR(rerr)
			resCh <- result{n: n, i: i, val: rv, err: rerr}
		}()
	}
	launch()
	hedge := time.NewTimer(f.hedgeDelay())
	defer hedge.Stop()

	var stale []*node // replicas that answered "not found": repair targets
	var lastErr error
	pending := 1
	for pending > 0 {
		select {
		case r := <-resCh:
			pending--
			if r.err == nil {
				f.nodeSuccess(r.n)
				f.met.readLat.Observe(float64(time.Since(start)) / float64(time.Microsecond))
				if r.i > 0 {
					f.met.hedgeWins.Inc()
				}
				f.slo.Record(true)
				f.repair(key, version, r.val, stale)
				return r.val, nil
			}
			if transportErr(r.err) {
				f.nodeFailure(r.n, r.err)
			} else {
				f.nodeSuccess(r.n)
				if errors.Is(r.err, core.ErrNotFound) {
					stale = append(stale, r.n)
				}
			}
			lastErr = r.err
			// A miss or failure is definitive for that replica: fan out to
			// the next one now rather than waiting for the hedge.
			if launched < len(ordered) {
				launch()
				pending++
			}
		case <-hedge.C:
			if launched < len(ordered) {
				launch()
				pending++
				f.met.hedges.Inc()
			}
			hedge.Reset(f.hedgeDelay())
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f.met.misses.Inc()
	f.slo.Record(false)
	if lastErr == nil {
		lastErr = ErrAllReplicas
	}
	return nil, lastErr
}

// repair writes the winning value back to replicas that answered "not
// found", asynchronously — the read's latency never pays for it. The
// goroutines are tracked, so Close waits for repairs in flight.
func (f *Fleet) repair(key []byte, version uint64, val []byte, stale []*node) {
	for _, n := range stale {
		if f.closed.Load() {
			return
		}
		f.wg.Add(1)
		go func(n *node) {
			defer f.wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			cl, err := n.client()
			if err == nil {
				err = cl.PutContext(ctx, key, version, val, false)
			}
			if err == nil {
				f.met.repairs.Inc()
			}
		}(n)
	}
}

// --- health probing and handoff drain ---------------------------------------

// proberLoop pings every node on the configured interval, feeding the
// breakers and draining handoff into nodes that answer.
func (f *Fleet) proberLoop() {
	defer f.wg.Done()
	t := time.NewTicker(f.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			f.probeAll()
		case <-f.stop:
			return
		}
	}
}

// probeAll is one health-probe round over every node.
func (f *Fleet) probeAll() {
	var wg sync.WaitGroup
	for _, n := range f.nodes {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			f.probe(n)
		}(n)
	}
	wg.Wait()
}

// ProbeNow runs one synchronous probe round — the deterministic hook
// tests and the qindbctl fleet subcommand use instead of waiting for
// the background prober.
func (f *Fleet) ProbeNow() {
	if f.closed.Load() {
		return
	}
	f.probeAll()
}

// probe pings one node (bounded by the probe interval, floored at 1s)
// and, when the node answers and owes hints, drains its handoff queue.
func (f *Fleet) probe(n *node) {
	timeout := f.cfg.ProbeInterval
	if timeout < time.Second {
		timeout = time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	cl, err := n.client()
	if err == nil {
		err = cl.PingContext(ctx)
	}
	if err != nil {
		f.nodeFailure(n, err)
		if n.setProbe(false) {
			f.events.Emitf(metrics.EventNodeDown, n.id, 0, "probe: %v", err)
		}
		return
	}
	f.nodeSuccess(n)
	if n.setProbe(true) {
		f.events.Emit(metrics.EventNodeUp, n.id, 0, "probe ok")
	}
	if n.handoffDepth() > 0 {
		f.drainHandoff(ctx, n)
	}
}

// drainHandoff replays a recovered node's owed hints as one batched
// write. On failure the undrained hints are re-queued (subject to the
// same bound), so a flapping node converges instead of losing writes.
func (f *Fleet) drainHandoff(ctx context.Context, n *node) error {
	hs := n.takeHints()
	if len(hs) == 0 {
		return nil
	}
	f.met.handoffDepth.Add(int64(-len(hs)))
	cl, err := n.client()
	if err == nil {
		b := cl.Batcher()
		for _, h := range hs {
			switch h.op {
			case server.OpDropVersion:
				err = b.DropVersion(ctx, h.version)
			default:
				err = b.Put(ctx, h.key, h.version, h.value, h.op == server.OpPutDedup)
			}
			if err != nil {
				break
			}
		}
		if err == nil {
			err = b.Flush(ctx)
		}
	}
	if err != nil && transportErr(err) {
		f.nodeFailure(n, err)
		q, d := n.queueHints(hs, f.cfg.HandoffLimit)
		f.met.handoffDepth.Add(int64(q))
		f.met.handoffDropped.Add(int64(d))
		f.events.Emitf(metrics.EventHandoffEnqueue, n.id, 0, "requeued=%d dropped=%d after failed drain", q, d)
		return err
	}
	f.met.handoffDrained.Add(int64(len(hs)))
	f.events.Emitf(metrics.EventHandoffDrain, n.id, 0, "drained=%d", len(hs))
	return err
}

// CollectTrace fetches one trace's spans from every configured ops
// endpoint (Config.OpsAddrs) plus the router's own tracer, and merges
// them into a single fleet-wide timeline. The router's spans are
// labeled "fleet-router"; each node labels its own (ops.Config.Node).
func (f *Fleet) CollectTrace(ctx context.Context, id uint64) (metrics.MergedTrace, error) {
	c := &metrics.TraceCollector{
		Endpoints: f.cfg.OpsAddrs,
		Local:     f.reg.Tracer(),
		LocalNode: "fleet-router",
	}
	return c.Collect(ctx, id)
}
