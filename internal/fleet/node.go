package fleet

import (
	"sync"
	"time"

	"directload/internal/server"
)

// breakerState is a node's circuit-breaker position.
type breakerState int

const (
	breakerClosed   breakerState = iota // healthy: requests flow
	breakerOpen                         // tripped: requests skip the node
	breakerHalfOpen                     // cooling off: one trial in flight
)

// String renders the state for Status and /fleet.
func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// hint is one operation owed to a node that was down when it happened —
// the unit of hinted handoff. Either a put (Key set) or a version drop.
type hint struct {
	op      uint8 // server.OpPut, server.OpPutDedup or server.OpDropVersion
	key     []byte
	version uint64
	value   []byte
}

// node is the router's view of one storage server: a lazily-dialed
// client, the circuit breaker that gates replica selection, and the
// bounded hinted-handoff queue of writes owed to it.
type node struct {
	id    string // placement identity (stable across redials)
	addr  string // TCP address
	group int
	opts  []server.DialOption

	mu        sync.Mutex
	cl        *server.Client
	state     breakerState
	fails     int       // consecutive failures
	openUntil time.Time // earliest next trial while open/half-open
	lastErr   string
	handoff   []hint
	dropped   int64 // hints lost to the queue bound
	probeDown bool  // last probe outcome; zero value assumes healthy
}

// client returns the node's client, dialing on first use. Dialing is
// lazy so a node that is down at construction time degrades the fleet
// instead of failing it; the dial itself runs outside the lock so a
// slow connect never blocks Status or placement.
func (n *node) client() (*server.Client, error) {
	n.mu.Lock()
	cl := n.cl
	n.mu.Unlock()
	if cl != nil {
		return cl, nil
	}
	cl, err := server.Dial(n.addr, n.opts...)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cl != nil {
		// Lost the dial race; keep the established client.
		go cl.Close()
		return n.cl, nil
	}
	n.cl = cl
	return cl, nil
}

// available reports whether the breaker admits a request right now. An
// open breaker lets one trial through per cooldown interval (half-open);
// the trial's outcome — reported via onSuccess/onFailure — decides
// whether the breaker closes or re-arms. trial is true when this call
// transitioned the breaker open → half-open (for the event log).
func (n *node) available(cooldown time.Duration) (admit, trial bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.state == breakerClosed {
		return true, false
	}
	now := time.Now()
	if now.After(n.openUntil) {
		trial = n.state == breakerOpen
		n.state = breakerHalfOpen
		n.openUntil = now.Add(cooldown)
		return true, trial
	}
	return false, false
}

// onSuccess records a healthy response: the failure streak resets and
// the breaker closes. Returns true when this call closed a previously
// open or half-open breaker (for the event log).
func (n *node) onSuccess() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	recovered := n.state != breakerClosed
	n.fails = 0
	n.state = breakerClosed
	n.lastErr = ""
	return recovered
}

// onFailure records a transport failure, tripping the breaker after
// threshold consecutive ones. Returns true when this call opened it.
func (n *node) onFailure(err error, threshold int, cooldown time.Duration) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.fails++
	if err != nil {
		n.lastErr = err.Error()
	}
	if n.state != breakerOpen && n.fails >= threshold {
		n.state = breakerOpen
		n.openUntil = time.Now().Add(cooldown)
		return true
	}
	if n.state == breakerHalfOpen {
		// Failed trial: re-arm without waiting for the threshold again.
		n.state = breakerOpen
		n.openUntil = time.Now().Add(cooldown)
	}
	return false
}

// setProbe records one probe outcome, returning true when it flipped
// the node's up/down view (an undetermined node counts as up, so the
// first successful probe is not a transition).
func (n *node) setProbe(ok bool) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ok == !n.probeDown {
		return false
	}
	n.probeDown = !ok
	return true
}

// queueHints appends hints to the bounded handoff queue, returning how
// many were queued and how many the bound discarded.
func (n *node) queueHints(hs []hint, limit int) (queued, dropped int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, h := range hs {
		if len(n.handoff) >= limit {
			dropped++
			continue
		}
		n.handoff = append(n.handoff, h)
		queued++
	}
	n.dropped += int64(dropped)
	return queued, dropped
}

// takeHints detaches the whole handoff queue for a drain attempt.
func (n *node) takeHints() []hint {
	n.mu.Lock()
	defer n.mu.Unlock()
	hs := n.handoff
	n.handoff = nil
	return hs
}

// handoffDepth returns the queued hint count.
func (n *node) handoffDepth() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.handoff)
}

// status snapshots the node for Status / the /fleet endpoint.
func (n *node) status() NodeStatus {
	n.mu.Lock()
	defer n.mu.Unlock()
	return NodeStatus{
		ID:               n.id,
		Addr:             n.addr,
		Group:            n.group,
		Breaker:          n.state.String(),
		ConsecutiveFails: n.fails,
		HandoffDepth:     len(n.handoff),
		HandoffDropped:   n.dropped,
		LastError:        n.lastErr,
	}
}

// close tears down the node's client, if one was ever dialed.
func (n *node) close() error {
	n.mu.Lock()
	cl := n.cl
	n.cl = nil
	n.mu.Unlock()
	if cl == nil {
		return nil
	}
	return cl.Close()
}
