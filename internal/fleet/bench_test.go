package fleet

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"directload/internal/aof"
	"directload/internal/blockfs"
	"directload/internal/core"
	"directload/internal/server"
	"directload/internal/ssd"
)

// benchGroup starts n real-TCP storage nodes and a fleet routing to
// them as one replication group.
func benchGroup(b *testing.B, n int, cfg Config) *Fleet {
	b.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		dev, err := ssd.NewDevice(ssd.DefaultConfig(1 << 30))
		if err != nil {
			b.Fatal(err)
		}
		db, err := core.Open(blockfs.NewNativeFS(dev), core.Options{
			AOF: aof.Config{FileSize: 16 << 20, GCThreshold: 0.25}, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		s := server.New(db)
		s.SetLogf(nil)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go s.Serve(ln)
		addrs[i] = ln.Addr().String()
		b.Cleanup(func() {
			s.Close()
			db.Close()
		})
	}
	cfg.Groups = [][]string{addrs}
	cfg.ProbeInterval = -1
	f, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { f.Close() })
	return f
}

// fleetEntries is one version's worth of records for the quorum-write
// benchmark — small enough to keep bench-json runs quick, large enough
// that batching dominates connection setup.
const fleetEntries = 2000

func benchFleetEntries(version int) []Entry {
	out := make([]Entry, 0, fleetEntries)
	for i := 0; i < fleetEntries; i++ {
		out = append(out, Entry{
			Key:   []byte(fmt.Sprintf("bench/%05d", i)),
			Value: []byte(fmt.Sprintf("payload-%d-%05d-0123456789abcdef", version, i)),
		})
	}
	return out
}

// BenchmarkFleetQuorumWrite publishes a 2k-entry version through the
// router at R=3/W=2 over three live TCP nodes. The puts/s figure counts
// logical entries, not replica writes (each entry lands on 3 nodes).
func BenchmarkFleetQuorumWrite(b *testing.B) {
	f := benchGroup(b, 3, Config{Replicas: 3, WriteQuorum: 2})
	ctx := context.Background()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if err := f.PublishVersion(ctx, uint64(n+1), benchFleetEntries(n+1)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(fleetEntries*b.N)/b.Elapsed().Seconds(), "puts/s")
}

// BenchmarkFleetHedgedRead measures single-key reads through the
// hedged parallel-read path with all replicas healthy: the common case
// where the primary answers before the hedge timer fires.
func BenchmarkFleetHedgedRead(b *testing.B) {
	f := benchGroup(b, 3, Config{
		Replicas: 3, WriteQuorum: 2,
		HedgeAfter: 5 * time.Millisecond,
	})
	ctx := context.Background()
	if err := f.PublishVersion(ctx, 1, benchFleetEntries(1)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		key := []byte(fmt.Sprintf("bench/%05d", n%fleetEntries))
		if _, err := f.Get(ctx, key, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "gets/s")
}
