package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"directload/internal/aof"
	"directload/internal/blockfs"
	"directload/internal/core"
	"directload/internal/metrics"
	"directload/internal/metrics/testutil"
	"directload/internal/mint"
	"directload/internal/server"
	"directload/internal/ssd"
)

// testNode is one restartable real-TCP storage node: stopping kills the
// server but keeps the engine, so a restart on the same address models
// a node that crashed and recovered with its flash intact.
type testNode struct {
	t    *testing.T
	addr string
	db   *core.DB
	srv  *server.Server
	reg  *metrics.Registry
}

func startNode(t *testing.T, reg *metrics.Registry) *testNode {
	t.Helper()
	dev, err := ssd.NewDevice(ssd.DefaultConfig(256 << 20))
	if err != nil {
		t.Fatal(err)
	}
	db, err := core.Open(blockfs.NewNativeFS(dev), core.Options{
		AOF: aof.Config{FileSize: 4 << 20, GCThreshold: 0.25}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tn := &testNode{t: t, db: db, reg: reg}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tn.addr = ln.Addr().String()
	tn.serve(ln)
	t.Cleanup(func() {
		tn.stop()
		db.Close()
	})
	return tn
}

func (tn *testNode) serve(ln net.Listener) {
	s := server.New(tn.db)
	s.SetLogf(nil)
	if tn.reg != nil {
		s.SetMetrics(tn.reg)
	}
	go s.Serve(ln)
	// Wait until Serve has registered the listener; otherwise an
	// immediate stop() could miss it and leave the port bound.
	for s.Addr() == nil {
		time.Sleep(time.Millisecond)
	}
	tn.srv = s
}

// stop kills the TCP server; the engine stays open.
func (tn *testNode) stop() {
	if tn.srv != nil {
		tn.srv.Close()
		tn.srv = nil
	}
}

// restart rebinds the original address over the surviving engine.
func (tn *testNode) restart() {
	tn.t.Helper()
	var ln net.Listener
	var err error
	for i := 0; i < 50; i++ {
		ln, err = net.Listen("tcp", tn.addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		tn.t.Fatalf("rebind %s: %v", tn.addr, err)
	}
	tn.serve(ln)
}

// has reports whether the node's engine holds (key, version).
func (tn *testNode) has(key string, version uint64) bool {
	return tn.db.Has([]byte(key), version)
}

// testFleet builds a fleet over the nodes as one group, with fast
// retries and the background prober off so tests drive probing.
func testFleet(t *testing.T, cfg Config, nodes ...*testNode) *Fleet {
	t.Helper()
	addrs := make([]string, len(nodes))
	for i, n := range nodes {
		addrs[i] = n.addr
	}
	cfg.Groups = [][]string{addrs}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = -1
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = time.Millisecond
	}
	if cfg.DialOpts == nil {
		cfg.DialOpts = []server.DialOption{server.WithTimeout(2 * time.Second)}
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func testEntries(version, n int) []Entry {
	out := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Entry{
			Key:   []byte(fmt.Sprintf("fk-%03d", i)),
			Value: []byte(fmt.Sprintf("fv-%d-%03d", version, i)),
		})
	}
	return out
}

// TestConfigValidation checks the constructor's guardrails.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("empty config err = %v", err)
	}
	if _, err := New(Config{Groups: [][]string{{"a", "b"}}, Replicas: 3, ProbeInterval: -1}); err == nil {
		t.Fatal("2-node group with 3 replicas should fail")
	}
	if _, err := New(Config{Groups: [][]string{{"a", "b", "c"}}, Replicas: 3, WriteQuorum: 4, ProbeInterval: -1}); err == nil {
		t.Fatal("W > R should fail")
	}
	if _, err := New(Config{Groups: [][]string{{"a", "a", "b"}}, Replicas: 2, ProbeInterval: -1}); err == nil {
		t.Fatal("duplicate node id should fail")
	}
}

// TestPlacementCrossCheckWithMint is the anti-drift guard: the fleet
// router and the simulated mint.Cluster must place a key sample onto
// identical groups and replica sets when configured with the same
// member IDs. New nodes are never dialed — placement is pure math.
func TestPlacementCrossCheckWithMint(t *testing.T) {
	mc, err := mint.New(mint.Config{
		Groups:        3,
		NodesPerGroup: 4,
		Replicas:      3,
		NodeCapacity:  16 << 20,
		Engine:        core.Options{AOF: aof.Config{FileSize: 1 << 20, GCThreshold: 0.25}, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()

	// Reconstruct mint's per-group membership from its node IDs
	// ("g<group>-n<seq>") to configure an identically-shaped fleet.
	groups := make([][]string, mc.Groups())
	for _, id := range mc.Nodes() {
		var g, n int
		if _, err := fmt.Sscanf(id, "g%d-n%d", &g, &n); err != nil {
			t.Fatalf("unexpected mint node id %q", id)
		}
		groups[g] = append(groups[g], id)
	}
	f, err := New(Config{Groups: groups, Replicas: 3, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	for i := 0; i < 500; i++ {
		key := []byte(fmt.Sprintf("cross/%05d", i*7919))
		g, ids := f.ReplicasFor(key)
		mintIDs := mc.ReplicaIDs(key)
		if len(ids) != len(mintIDs) {
			t.Fatalf("key %s: fleet picked %d replicas, mint %d", key, len(ids), len(mintIDs))
		}
		for j := range ids {
			if ids[j] != mintIDs[j] {
				t.Fatalf("key %s: fleet replicas %v != mint replicas %v", key, ids, mintIDs)
			}
			if !strings.HasPrefix(ids[j], fmt.Sprintf("g%d-", g)) {
				t.Fatalf("key %s: replica %s outside fleet group %d", key, ids[j], g)
			}
		}
	}
}

// TestQuorumPublishAndGet is the basic happy path: R=3/W=2 publish
// lands on all three nodes, and a fleet read returns the value.
func TestQuorumPublishAndGet(t *testing.T) {
	n1, n2, n3 := startNode(t, nil), startNode(t, nil), startNode(t, nil)
	f := testFleet(t, Config{Replicas: 3, WriteQuorum: 2}, n1, n2, n3)

	entries := testEntries(1, 40)
	if err := f.PublishVersion(context.Background(), 1, entries); err != nil {
		t.Fatalf("publish: %v", err)
	}
	for _, tn := range []*testNode{n1, n2, n3} {
		if !tn.has("fk-000", 1) {
			t.Fatalf("node %s missing fk-000 after full-strength publish", tn.addr)
		}
	}
	val, err := f.Get(context.Background(), []byte("fk-007"), 1)
	if err != nil || string(val) != "fv-1-007" {
		t.Fatalf("Get = %q, %v", val, err)
	}
	if _, err := f.Get(context.Background(), []byte("absent"), 1); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("Get(absent) err = %v, want ErrNotFound", err)
	}
}

// TestQuorumSurvivesNodeDownAndHandoffDrains kills one replica, checks
// a publish still reaches quorum with the dead node's share hinted, and
// that recovery + a probe round drains the handoff so the node
// converges on the version it missed.
func TestQuorumSurvivesNodeDownAndHandoffDrains(t *testing.T) {
	testutil.CheckGoroutines(t)
	n1, n2, n3 := startNode(t, nil), startNode(t, nil), startNode(t, nil)
	f := testFleet(t, Config{Replicas: 3, WriteQuorum: 2, WriteRetries: 1}, n1, n2, n3)
	ctx := context.Background()

	if err := f.PublishVersion(ctx, 1, testEntries(1, 30)); err != nil {
		t.Fatalf("publish v1: %v", err)
	}

	n3.stop()
	if err := f.PublishVersion(ctx, 2, testEntries(2, 30)); err != nil {
		t.Fatalf("publish v2 with one node down: %v", err)
	}
	if !n1.has("fk-000", 2) || !n2.has("fk-000", 2) {
		t.Fatal("live replicas missing v2 after quorum publish")
	}
	var down NodeStatus
	for _, ns := range f.Status().Nodes {
		if ns.ID == n3.addr {
			down = ns
		}
	}
	if down.HandoffDepth != 30 {
		t.Fatalf("downed node handoff depth = %d, want 30", down.HandoffDepth)
	}

	// Reads keep working while the replica is gone.
	if val, err := f.Get(ctx, []byte("fk-005"), 2); err != nil || string(val) != "fv-2-005" {
		t.Fatalf("Get during outage = %q, %v", val, err)
	}

	n3.restart()
	f.ProbeNow()
	for _, ns := range f.Status().Nodes {
		if ns.ID == n3.addr && ns.HandoffDepth != 0 {
			t.Fatalf("handoff not drained after recovery probe: depth %d", ns.HandoffDepth)
		}
	}
	for i := 0; i < 30; i++ {
		if key := fmt.Sprintf("fk-%03d", i); !n3.has(key, 2) {
			t.Fatalf("recovered node missing %s@v2 after handoff drain", key)
		}
	}
}

// TestQuorumFailure: with two of three replicas down and W=2, a publish
// must fail with ErrQuorum and name the unreachable nodes.
func TestQuorumFailure(t *testing.T) {
	n1, n2, n3 := startNode(t, nil), startNode(t, nil), startNode(t, nil)
	f := testFleet(t, Config{Replicas: 3, WriteQuorum: 2, WriteRetries: 1}, n1, n2, n3)

	n2.stop()
	n3.stop()
	err := f.PublishVersion(context.Background(), 1, testEntries(1, 10))
	if !errors.Is(err, ErrQuorum) {
		t.Fatalf("publish err = %v, want ErrQuorum", err)
	}
	if msg := err.Error(); !strings.Contains(msg, n2.addr) || !strings.Contains(msg, n3.addr) {
		t.Fatalf("quorum error does not name both dead nodes: %v", msg)
	}
}

// slowProxy fronts a backend with a fixed delay on every server→client
// chunk — an artificially slow replica for hedging tests.
func slowProxy(t *testing.T, backend string, delay time.Duration) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				b, err := net.Dial("tcp", backend)
				if err != nil {
					c.Close()
					return
				}
				go func() {
					io.Copy(b, c)
					b.Close()
				}()
				buf := make([]byte, 32<<10)
				for {
					n, rerr := b.Read(buf)
					if n > 0 {
						time.Sleep(delay)
						if _, werr := c.Write(buf[:n]); werr != nil {
							break
						}
					}
					if rerr != nil {
						break
					}
				}
				c.Close()
				b.Close()
			}(c)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

// TestHedgedReadBeatsSlowReplica slows one replica behind a delaying
// proxy and picks a key whose primary it is: the hedge must fire and a
// healthy replica must answer well before the slow one would have.
func TestHedgedReadBeatsSlowReplica(t *testing.T) {
	slow := startNode(t, nil)
	n2, n3 := startNode(t, nil), startNode(t, nil)
	const delay = 300 * time.Millisecond
	proxyAddr := slowProxy(t, slow.addr, delay)

	reg := metrics.NewRegistry()
	f := testFleet(t, Config{
		Replicas:    3,
		WriteQuorum: 2,
		HedgeAfter:  15 * time.Millisecond,
		Metrics:     reg,
	}, &testNode{addr: proxyAddr}, n2, n3)

	// Find a key whose primary replica is the proxied node.
	var key []byte
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("hedge-%04d", i))
		if _, ids := f.ReplicasFor(k); ids[0] == proxyAddr {
			key = k
			break
		}
	}
	if key == nil {
		t.Fatal("no key found with the slow node as primary")
	}
	// Load the key directly onto the fast backends so the publish path
	// doesn't pay the proxy delay.
	for _, addr := range []string{slow.addr, n2.addr, n3.addr} {
		cl, err := server.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.PutContext(context.Background(), key, 1, []byte("hv"), false); err != nil {
			t.Fatal(err)
		}
		cl.Close()
	}

	start := time.Now()
	val, err := f.Get(context.Background(), key, 1)
	elapsed := time.Since(start)
	if err != nil || string(val) != "hv" {
		t.Fatalf("hedged Get = %q, %v", val, err)
	}
	if elapsed >= delay {
		t.Fatalf("hedged read took %v, not faster than the slow replica's %v", elapsed, delay)
	}
	if wins := reg.Counter("fleet.read.hedge_wins").Load(); wins < 1 {
		t.Fatalf("hedge_wins = %d, want >= 1", wins)
	}
	if hedges := reg.Counter("fleet.read.hedges").Load(); hedges < 1 {
		t.Fatalf("hedges = %d, want >= 1", hedges)
	}
}

// TestReadRepairConvergence leaves the primary replica stale (missing
// the key), reads through the fleet, and requires the repair write to
// converge the stale replica.
func TestReadRepairConvergence(t *testing.T) {
	n1, n2, n3 := startNode(t, nil), startNode(t, nil), startNode(t, nil)
	reg := metrics.NewRegistry()
	f := testFleet(t, Config{Replicas: 3, WriteQuorum: 2, Metrics: reg}, n1, n2, n3)

	byAddr := map[string]*testNode{n1.addr: n1, n2.addr: n2, n3.addr: n3}
	key := []byte("repair-key")
	_, ids := f.ReplicasFor(key)
	stale := byAddr[ids[0]]
	// Only the secondary replicas hold the key.
	for _, id := range ids[1:] {
		cl, err := server.Dial(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.PutContext(context.Background(), key, 1, []byte("repaired"), false); err != nil {
			t.Fatal(err)
		}
		cl.Close()
	}
	if stale.has(string(key), 1) {
		t.Fatal("primary unexpectedly has the key before the read")
	}

	val, err := f.Get(context.Background(), key, 1)
	if err != nil || string(val) != "repaired" {
		t.Fatalf("Get = %q, %v", val, err)
	}
	// Close waits for in-flight repair writes, making convergence
	// deterministic to observe.
	f.Close()
	if !stale.has(string(key), 1) {
		t.Fatal("stale replica not repaired after fleet read")
	}
	if repairs := reg.Counter("fleet.read.repairs").Load(); repairs < 1 {
		t.Fatalf("repairs = %d, want >= 1", repairs)
	}
}

// TestBreakerOpensAndRecovers drives enough failures into one node to
// trip its breaker, checks it is skipped, then heals it via probing.
func TestBreakerOpensAndRecovers(t *testing.T) {
	n1, n2, n3 := startNode(t, nil), startNode(t, nil), startNode(t, nil)
	reg := metrics.NewRegistry()
	f := testFleet(t, Config{
		Replicas: 3, WriteQuorum: 2, WriteRetries: 1,
		BreakerThreshold: 2, BreakerCooldown: 50 * time.Millisecond,
		Metrics: reg,
	}, n1, n2, n3)
	ctx := context.Background()

	n3.stop()
	// Two publishes, each retrying once = enough consecutive transport
	// failures to trip the threshold of 2.
	for v := uint64(1); v <= 2; v++ {
		if err := f.PublishVersion(ctx, v, testEntries(int(v), 5)); err != nil {
			t.Fatalf("publish v%d: %v", v, err)
		}
	}
	var st NodeStatus
	for _, ns := range f.Status().Nodes {
		if ns.ID == n3.addr {
			st = ns
		}
	}
	if st.Breaker == "closed" {
		t.Fatalf("breaker still closed after repeated failures: %+v", st)
	}
	if opens := reg.Counter("fleet.breaker.opens").Load(); opens < 1 {
		t.Fatalf("breaker.opens = %d, want >= 1", opens)
	}

	n3.restart()
	time.Sleep(60 * time.Millisecond) // let the cooldown lapse
	f.ProbeNow()                      // half-open trial succeeds, breaker closes, handoff drains
	for _, ns := range f.Status().Nodes {
		if ns.ID == n3.addr {
			if ns.Breaker != "closed" {
				t.Fatalf("breaker = %s after successful probe", ns.Breaker)
			}
			if ns.HandoffDepth != 0 {
				t.Fatalf("handoff depth = %d after drain", ns.HandoffDepth)
			}
		}
	}
	if !n3.has("fk-000", 2) {
		t.Fatal("recovered node missing hinted writes")
	}
}

// TestDropVersionHinted checks retention reaches a down node via the
// handoff queue once it recovers.
func TestDropVersionHinted(t *testing.T) {
	n1, n2, n3 := startNode(t, nil), startNode(t, nil), startNode(t, nil)
	f := testFleet(t, Config{Replicas: 3, WriteQuorum: 2, WriteRetries: 1}, n1, n2, n3)
	ctx := context.Background()

	if err := f.PublishVersion(ctx, 1, testEntries(1, 10)); err != nil {
		t.Fatal(err)
	}
	n3.stop()
	if err := f.DropVersion(ctx, 1); err != nil {
		t.Fatalf("DropVersion with a node down: %v", err)
	}
	if n1.has("fk-000", 1) || n2.has("fk-000", 1) {
		t.Fatal("live nodes still hold the dropped version")
	}
	if !n3.has("fk-000", 1) {
		t.Fatal("dead node should still hold the version (drop owed via hint)")
	}
	n3.restart()
	f.ProbeNow()
	if n3.has("fk-000", 1) {
		t.Fatal("recovered node still holds the dropped version after drain")
	}
}

// TestFleetE2EOneTrace is the acceptance run: a 3-node group at R=3/W=2
// with one node down — the publish reaches quorum, a hedged parallel
// read serves the GET, the recovered node converges via handoff, and
// ONE trace ID covers router → replica → engine spans.
func TestFleetE2EOneTrace(t *testing.T) {
	testutil.CheckGoroutines(t)
	reg := metrics.NewRegistry()
	n1 := startNode(t, reg)
	n2 := startNode(t, reg)
	n3 := startNode(t, reg)
	f := testFleet(t, Config{
		Replicas: 3, WriteQuorum: 2, WriteRetries: 1, Metrics: reg,
		DialOpts: []server.DialOption{
			server.WithTimeout(2 * time.Second),
			server.WithMetrics(reg),
		},
	}, n1, n2, n3)

	n3.stop()
	ctx, end := reg.StartSpan(context.Background(), "test.fleet")
	sc, ok := metrics.SpanFromContext(ctx)
	if !ok {
		t.Fatal("no span in test context")
	}
	if err := f.PublishVersion(ctx, 1, testEntries(1, 25)); err != nil {
		t.Fatalf("publish with one node down: %v", err)
	}
	val, err := f.Get(ctx, []byte("fk-003"), 1)
	if err != nil || string(val) != "fv-1-003" {
		t.Fatalf("Get = %q, %v", val, err)
	}
	end(nil)

	n3.restart()
	f.ProbeNow()
	if !n3.has("fk-003", 1) {
		t.Fatal("recovered node did not converge via handoff")
	}

	trace := reg.Tracer().Trace(sc.TraceID)
	counts := make(map[string]int)
	for _, rec := range trace {
		if rec.TraceID != sc.TraceID {
			t.Fatalf("span %q escaped into trace %016x", rec.Name, rec.TraceID)
		}
		counts[rec.Name]++
	}
	// Router spans.
	if counts["fleet.publish"] != 1 || counts["fleet.replica.write"] != 3 {
		t.Fatalf("router write spans wrong: %v", counts)
	}
	if counts["fleet.get"] != 1 || counts["fleet.replica.get"] < 1 {
		t.Fatalf("router read spans wrong: %v", counts)
	}
	// The wire hop: batched flushes on the two live replicas, answered
	// by server-side handlers whose engine writes are sub-op spans.
	if counts["client.batch.flush"] < 2 {
		t.Fatalf("client.batch.flush spans = %d, want >= 2 (%v)", counts["client.batch.flush"], counts)
	}
	if counts["server.req.batch"] < 2 {
		t.Fatalf("server.req.batch spans = %d, want >= 2 (%v)", counts["server.req.batch"], counts)
	}
	if counts["server.batch.put"] != 2*25 {
		t.Fatalf("server.batch.put spans = %d, want %d (%v)", counts["server.batch.put"], 2*25, counts)
	}
	if counts["server.req.get"] < 1 {
		t.Fatalf("server.req.get spans = %d, want >= 1 (%v)", counts["server.req.get"], counts)
	}
}

// TestStatusShape sanity-checks the operator snapshot.
func TestStatusShape(t *testing.T) {
	n1, n2, n3 := startNode(t, nil), startNode(t, nil), startNode(t, nil)
	f := testFleet(t, Config{Replicas: 3}, n1, n2, n3)
	st := f.Status()
	if st.Groups != 1 || st.Replicas != 3 || st.WriteQuorum != 2 {
		t.Fatalf("status = %+v", st)
	}
	if len(st.Nodes) != 3 {
		t.Fatalf("status nodes = %d", len(st.Nodes))
	}
	if st.HedgeDelayUs != int64(2*time.Millisecond/time.Microsecond) {
		t.Fatalf("hedge delay = %dus, want the 2ms default before samples exist", st.HedgeDelayUs)
	}
	for _, ns := range st.Nodes {
		if ns.Breaker != "closed" || ns.HandoffDepth != 0 {
			t.Fatalf("fresh node status = %+v", ns)
		}
	}
}
