// Package facthelp exercises every fact the engine exports; the
// engine test (facts_test.go) checks the computed summaries, and
// factuser checks they survive the import path.
package facthelp

import (
	"context"
	"sync"
)

// Sink retains its buffer in a struct field.
type Sink struct {
	last []byte
	all  map[string][]byte
}

// Keep stores p: Retains=[0].
func (s *Sink) Keep(p []byte) {
	s.last = p
}

// KeepMap stores p in a map: Retains=[0].
func (s *Sink) KeepMap(k string, p []byte) {
	s.all[k] = p
}

// CopyOut appends p's contents: spreading copies bytes, so no fact.
func (s *Sink) CopyOut(p []byte) {
	s.last = append(s.last[:0], p...)
}

// KeepIndirect retains p by passing it to Keep: Retains=[0]
// transitively.
func (s *Sink) KeepIndirect(p []byte) {
	s.Keep(p)
}

// Finish calls its span closer: EndsSpan=[0].
func Finish(end func(error), err error) {
	end(err)
}

// FinishDeferred defers its span closer: EndsSpan=[0].
func FinishDeferred(end func(error)) {
	defer end(nil)
}

// Drop never calls end: no EndsSpan fact.
func Drop(end func(error)) {
	_ = end
}

// Recycle returns p to the pool: Puts=[1].
func Recycle(pool *sync.Pool, p []byte) {
	pool.Put(p)
}

// Spin loops with no exit: LoopsForever.
func Spin() {
	n := 0
	for {
		n++
	}
}

// Serve loops but watches ctx: terminates.
func Serve(ctx context.Context, work chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-work:
		}
	}
}

// WaitOn blocks on a channel receive: Blocks.
func WaitOn(ch chan int) int {
	return <-ch
}
