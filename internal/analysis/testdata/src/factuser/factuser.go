// Package factuser calls facthelp across a package boundary; the
// engine test checks that factuser's own summaries pick up facthelp's
// facts (retention through an imported callee).
package factuser

import "facthelp"

// Forward retains p only because facthelp.(*Sink).Keep does:
// Retains=[1] requires the imported fact.
func Forward(s *facthelp.Sink, p []byte) {
	s.Keep(p)
}

// Inspect reads the buffer without storing it: no facts.
func Inspect(s *facthelp.Sink, p []byte) int {
	return len(p)
}
