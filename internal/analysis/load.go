package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader type-checks packages from source. Test fixtures live in a
// GOPATH-style tree (root/src/<importpath>/*.go); imports that resolve
// inside the tree are loaded recursively, everything else falls back
// to the standard library via the compiler's source importer.
type Loader struct {
	Root string // directory containing src/
	Fset *token.FileSet

	std    types.ImporterFrom
	loaded map[string]*Package
	facts  map[string]*FactSet
}

// NewLoader creates a loader rooted at root (fixtures under root/src).
func NewLoader(root string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Root:   root,
		Fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		loaded: make(map[string]*Package),
		facts:  make(map[string]*FactSet),
	}
}

// ImportedFacts computes (and caches) the merged facts of every
// fixture-local package pkg imports, transitively — the loader
// equivalent of the vetx files `go vet` hands RunUnit. Standard
// library imports contribute nothing, matching the unit driver.
func (l *Loader) ImportedFacts(pkg *Package) *FactSet {
	merged := NewFactSet()
	for _, imp := range pkg.Pkg.Imports() {
		dep, ok := l.loaded[imp.Path()]
		if !ok {
			continue // stdlib
		}
		merged.Merge(l.ImportedFacts(dep))
		merged.Merge(l.factsOf(imp.Path(), dep))
	}
	return merged
}

func (l *Loader) factsOf(path string, pkg *Package) *FactSet {
	if fs, ok := l.facts[path]; ok {
		return fs
	}
	fs := ComputeFacts(pkg, l.ImportedFacts(pkg))
	l.facts[path] = fs
	return fs
}

// Load parses and type-checks the fixture package at importPath.
func (l *Loader) Load(importPath string) (*Package, error) {
	if pkg, ok := l.loaded[importPath]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.Root, "src", filepath.FromSlash(importPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: (*loaderImporter)(l)}
	pkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, err
	}
	loaded := &Package{Fset: l.Fset, Files: files, Pkg: pkg, Info: info}
	l.loaded[importPath] = loaded
	return loaded, nil
}

// loaderImporter routes fixture-local imports to the loader and
// everything else to the source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if _, err := os.Stat(filepath.Join(l.Root, "src", filepath.FromSlash(path))); err == nil {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return l.std.Import(path)
}

// NewInfo allocates the types.Info with every map the analyzers read.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
