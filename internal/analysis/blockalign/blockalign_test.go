package blockalign_test

import (
	"testing"

	"directload/internal/analysis/analysistest"
	"directload/internal/analysis/blockalign"
)

func TestBlockAlign(t *testing.T) {
	analysistest.Run(t, "testdata", blockalign.Analyzer, "store")
}
