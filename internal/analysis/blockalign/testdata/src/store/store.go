// Package store is a fixture driving buffers into the device sinks,
// some provably page-aligned and some not.
package store

import (
	"aof"
	"ssd"
)

const pageSize = 4096

// alignUp is an alignment helper the analyzer recognizes by name.
func alignUp(b []byte) []byte { return b }

func okSlice(d *ssd.Device, buf []byte) {
	d.ProgramPage(ssd.OwnerNative, 0, 0, buf[:pageSize])
}

func okSliceField(d *ssd.Device, buf []byte) {
	d.ProgramPage(ssd.OwnerNative, 0, 0, buf[:d.PageSize])
}

func okMakeInline(d *ssd.Device) {
	d.ProgramPage(ssd.OwnerNative, 0, 0, make([]byte, pageSize))
}

func okMakeLocal(d *ssd.Device) {
	buf := make([]byte, 2*pageSize)
	d.ProgramPage(ssd.OwnerNative, 0, 0, buf)
}

func okConstSlice(d *ssd.Device, buf []byte) {
	page := buf[:4096]
	d.ProgramPage(ssd.OwnerNative, 0, 0, page)
}

func okHelper(f *ssd.FTL, buf []byte) {
	f.Write(0, alignUp(buf))
}

func badRaw(d *ssd.Device, buf []byte) {
	d.ProgramPage(ssd.OwnerNative, 0, 0, buf) // want `buffer reaching Device.ProgramPage is not provably page-aligned`
}

func badPartial(d *ssd.Device, buf []byte, n int) {
	d.ProgramPage(ssd.OwnerNative, 0, 0, buf[:n]) // want `buffer reaching Device.ProgramPage is not provably page-aligned`
}

func badReassigned(d *ssd.Device, tail []byte) {
	buf := make([]byte, pageSize)
	buf = tail
	d.ProgramPage(ssd.OwnerNative, 0, 0, buf) // want `buffer reaching Device.ProgramPage is not provably page-aligned`
}

func badFTL(f *ssd.FTL, data []byte) {
	f.Write(0, data) // want `buffer reaching FTL.Write is not provably page-aligned`
}

func okConfig() aof.Config {
	return aof.Config{FileSize: 64 << 20, Fsync: true}
}

func okConfigVar(sz int64) aof.Config {
	// Non-constant sizes are the caller's responsibility.
	return aof.Config{FileSize: sz}
}

func badConfig() aof.Config {
	return aof.Config{FileSize: 4096} // want `aof.Config.FileSize 4096 is not a multiple of the 262144-byte erase block`
}

func badConfigExpr() aof.Config {
	return aof.Config{FileSize: 3 << 16} // want `aof.Config.FileSize 196608 is not a multiple of the 262144-byte erase block`
}
