// Package ssd is a fixture standing in for the flash device simulator:
// the two page-granular write sinks the analyzer guards.
package ssd

type Owner int

const OwnerNative Owner = 0

type Device struct {
	PageSize int
}

func (d *Device) ProgramPage(owner Owner, blockID, pageIdx int, data []byte) error {
	_ = data
	return nil
}

type FTL struct{}

func (f *FTL) Write(lpn int, data []byte) error {
	_ = data
	return nil
}
