// Package aof is a fixture for the AOF geometry rule.
package aof

type Config struct {
	FileSize int64
	Fsync    bool
}
