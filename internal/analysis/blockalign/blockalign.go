// Package blockalign protects the paper's core SSD claim: QinDB's
// write amplification (~2.5x, §3/§5) holds only while every byte
// reaching flash goes down block-aligned. The device interface
// programs whole pages and erases whole blocks; a buffer of the wrong
// size slips through at runtime (the device pads silently) but breaks
// the zero-hardware-WA accounting.
//
// The analyzer checks two things (test files are exempt):
//
//  1. Page-granular device writes — (*ssd.Device).ProgramPage and
//     (*ssd.FTL).Write — must pass a buffer whose size is *provably*
//     page-aligned: a slice bounded by a page-size identifier
//     (pageSize, PageSize, BlockSize()...), make() with such a size, a
//     local whose single definition is such an expression, or a call
//     to an align/pad helper. Anything else is flagged.
//  2. aof.Config literals must set FileSize to a multiple of the
//     erase-block size (256 KiB with the paper's geometry), so AOF
//     rotation stays block-aligned end to end.
package blockalign

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"directload/internal/analysis"
)

// Analyzer is the blockalign check.
var Analyzer = &analysis.Analyzer{
	Name: "blockalign",
	Doc:  "device page writes and AOF geometry must be provably block-aligned",
	Run:  run,
}

// eraseBlockSize is the erase-block size of the paper's device
// geometry (4 KiB pages x 64 pages); used only to vet integer
// literals, which should be spelled via the geometry anyway.
const eraseBlockSize = 4096 * 64

// sinks maps device write methods to the index of their data
// argument.
var sinks = []struct {
	pkg, typ, method string
	argIndex         int
}{
	{"ssd", "Device", "ProgramPage", 3},
	{"ssd", "FTL", "Write", 1},
}

// alignedName matches identifiers that carry page/block-size meaning.
var alignedName = regexp.MustCompile(`(?i)^(page|block)size$|^(align|pad)`)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if analysis.IsTestFile(pass, n) {
					return true
				}
				checkSink(pass, n)
			case *ast.CompositeLit:
				if analysis.IsTestFile(pass, n) {
					return true
				}
				checkAOFConfig(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkSink(pass *analysis.Pass, call *ast.CallExpr) {
	for _, s := range sinks {
		if !analysis.IsMethodCall(pass.TypesInfo, call, s.pkg, s.typ, s.method) {
			continue
		}
		if len(call.Args) <= s.argIndex {
			return
		}
		arg := call.Args[s.argIndex]
		if !alignedExpr(pass, arg, enclosingFunc(pass, call)) {
			pass.Reportf(arg.Pos(),
				"buffer reaching %s.%s is not provably page-aligned; size it from the page-size constant (e.g. buf[:pageSize] or make([]byte, pageSize))",
				s.typ, s.method)
		}
		return
	}
}

// checkAOFConfig vets FileSize fields in aof.Config literals.
func checkAOFConfig(pass *analysis.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || !analysis.IsNamed(tv.Type, "aof", "Config") {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "FileSize" {
			continue
		}
		vt, ok := pass.TypesInfo.Types[kv.Value]
		if !ok || vt.Value == nil {
			continue // non-constant sizes are the caller's problem
		}
		if v, exact := constant.Int64Val(vt.Value); exact && v%eraseBlockSize != 0 {
			pass.Reportf(kv.Value.Pos(),
				"aof.Config.FileSize %d is not a multiple of the %d-byte erase block; rotation would leave a torn block", v, eraseBlockSize)
		}
	}
}

// enclosingFunc finds the innermost function body containing n, used
// to resolve single-assignment locals.
func enclosingFunc(pass *analysis.Pass, n ast.Node) *ast.BlockStmt {
	var body *ast.BlockStmt
	for _, f := range pass.Files {
		if n.Pos() < f.Pos() || n.Pos() > f.End() {
			continue
		}
		ast.Inspect(f, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncDecl:
				if m.Body != nil && m.Body.Pos() <= n.Pos() && n.Pos() <= m.Body.End() {
					body = m.Body
				}
			case *ast.FuncLit:
				if m.Body.Pos() <= n.Pos() && n.Pos() <= m.Body.End() {
					body = m.Body
				}
			}
			return true
		})
	}
	return body
}

// alignedExpr reports whether e is provably a whole number of pages.
func alignedExpr(pass *analysis.Pass, e ast.Expr, scope *ast.BlockStmt) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.SliceExpr:
		lowOK := e.Low == nil || isZero(pass, e.Low) || alignedSize(pass, e.Low, scope)
		return lowOK && e.High != nil && alignedSize(pass, e.High, scope)
	case *ast.CallExpr:
		if isBuiltin(pass, e, "make") && len(e.Args) >= 2 {
			return alignedSize(pass, e.Args[1], scope)
		}
		return alignedCallee(pass, e)
	case *ast.Ident:
		if def := singleDefinition(pass, e, scope); def != nil {
			return alignedExpr(pass, def, scope)
		}
	}
	return false
}

// alignedSize reports whether a size expression is provably a
// multiple of the page size.
func alignedSize(pass *analysis.Pass, e ast.Expr, scope *ast.BlockStmt) bool {
	e = ast.Unparen(e)
	// Constant: accept zero and literal multiples of the geometry.
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		if v, exact := constant.Int64Val(tv.Value); exact {
			return v%4096 == 0
		}
	}
	switch e := e.(type) {
	case *ast.Ident:
		if alignedName.MatchString(e.Name) {
			return true
		}
		if def := singleDefinition(pass, e, scope); def != nil {
			return alignedSize(pass, def, scope)
		}
	case *ast.SelectorExpr:
		return alignedName.MatchString(e.Sel.Name)
	case *ast.CallExpr:
		if isBuiltin(pass, e, "len") && len(e.Args) == 1 {
			return alignedExpr(pass, e.Args[0], scope) || alignedSize(pass, e.Args[0], scope)
		}
		return alignedCallee(pass, e)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.MUL:
			return alignedSize(pass, e.X, scope) || alignedSize(pass, e.Y, scope)
		case token.ADD, token.SUB:
			return alignedSize(pass, e.X, scope) && alignedSize(pass, e.Y, scope)
		}
	case *ast.CompositeLit, *ast.StarExpr, *ast.IndexExpr, *ast.SliceExpr, *ast.UnaryExpr, *ast.BasicLit, *ast.FuncLit, *ast.TypeAssertExpr:
	}
	return false
}

// alignedCallee accepts calls whose callee name signals alignment
// (BlockSize(), alignUp(...), padToPage(...)).
func alignedCallee(pass *analysis.Pass, call *ast.CallExpr) bool {
	f := analysis.CalleeFunc(pass.TypesInfo, call)
	if f == nil {
		return false
	}
	name := f.Name()
	return alignedName.MatchString(name) || strings.Contains(strings.ToLower(name), "align")
}

func isBuiltin(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isB := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isB
}

func isZero(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v, exact := constant.Int64Val(tv.Value)
	return exact && v == 0
}

// singleDefinition returns the unique expression assigned to the
// identifier's object within scope, or nil when the local is assigned
// more than once (or never, e.g. parameters).
func singleDefinition(pass *analysis.Pass, id *ast.Ident, scope *ast.BlockStmt) ast.Expr {
	if scope == nil {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return nil
	}
	var def ast.Expr
	count := 0
	ast.Inspect(scope, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if pass.TypesInfo.Defs[lid] == obj || pass.TypesInfo.Uses[lid] == obj {
				count++
				def = as.Rhs[i]
			}
		}
		return true
	})
	if count == 1 {
		return def
	}
	return nil
}
