package analysis

// Interprocedural facts. The engine summarizes every function it
// analyzes into a small, serializable FuncFact ("retains its []byte
// arg", "calls its func(error) arg", "loops forever", "returns its arg
// to a sync.Pool", "may block"), and records which struct fields and
// package-level variables are accessed through sync/atomic. The
// summaries ride the same vet.cfg facts channel the go command already
// maintains for -vettool runs (see unit.go): each package's facts are
// written to cfg.VetxOutput, and dependents read them back through
// cfg.PackageVetx before their own analysis runs. Analyzers consume
// the merged view through Pass.Facts, which is how a diagnostic in one
// package can depend on code in another — bufown flagging a pooled
// buffer passed to a helper that stores it, spanend accepting a span
// closer handed to a helper that calls it.
//
// Facts are versioned (FactsVersion): a fact file written by a
// different engine revision decodes as empty rather than as wrong
// answers, and bumping the directload-vet -V version string makes the
// go command rebuild every cached vetx anyway.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// FactsVersion names the fact-file schema. Bump it whenever FuncFact
// gains, loses or reinterprets a field: stale files then decode as
// empty instead of as wrong answers.
const FactsVersion = "directload-vet-facts/1"

// FuncFact is one function's exported summary. Param indices count
// declared parameters left to right from zero; the receiver is not
// indexed (retention into receiver fields still sets Retains for the
// stored parameter).
type FuncFact struct {
	// Retains lists params the function stores beyond the call:
	// into a struct field, map, slice element, package-level
	// variable, composite literal, or a goroutine it launches —
	// directly or by passing them to a callee that does.
	Retains []int `json:"retains,omitempty"`
	// Puts lists params the function returns to a sync.Pool
	// (directly or via a callee with a Puts fact).
	Puts []int `json:"puts,omitempty"`
	// EndsSpan lists func(error)-typed params the function invokes
	// (called or deferred) — the shape of a span closer helper.
	EndsSpan []int `json:"ends_span,omitempty"`
	// LoopsForever means the body contains a condition-less for
	// loop with no visible exit (return, loop break, ctx/done
	// receive, panic/exit): a caller launching this function as a
	// goroutine owns a process-lifetime goroutine.
	LoopsForever bool `json:"loops_forever,omitempty"`
	// Blocks means the body performs a blocking operation (channel
	// send/receive, select, sync.WaitGroup.Wait, mutex Lock,
	// time.Sleep) or calls a callee that does. Exported for future
	// analyzers (e.g. an interprocedural locksafe); none consume it
	// yet.
	Blocks bool `json:"blocks,omitempty"`
}

func (f *FuncFact) empty() bool {
	return f == nil || (len(f.Retains) == 0 && len(f.Puts) == 0 &&
		len(f.EndsSpan) == 0 && !f.LoopsForever && !f.Blocks)
}

func (f *FuncFact) equal(g *FuncFact) bool {
	if f == nil || g == nil {
		return f.empty() && g.empty()
	}
	return intsEqual(f.Retains, g.Retains) && intsEqual(f.Puts, g.Puts) &&
		intsEqual(f.EndsSpan, g.EndsSpan) &&
		f.LoopsForever == g.LoopsForever && f.Blocks == g.Blocks
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RetainsParam reports whether the fact marks param index i retained.
func (f *FuncFact) RetainsParam(i int) bool { return f != nil && containsInt(f.Retains, i) }

// PutsParam reports whether the fact marks param index i pooled-Put.
func (f *FuncFact) PutsParam(i int) bool { return f != nil && containsInt(f.Puts, i) }

// EndsSpanParam reports whether the fact marks param index i as an
// invoked span closer.
func (f *FuncFact) EndsSpanParam(i int) bool { return f != nil && containsInt(f.EndsSpan, i) }

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// FactSet is one package's facts (or a merged view across packages).
type FactSet struct {
	// Funcs maps FuncKey strings to summaries. Empty summaries are
	// kept too: "analyzed, nothing noteworthy" is distinct from
	// "never analyzed" (an unknown callee is treated
	// conservatively).
	Funcs map[string]*FuncFact
	// AtomicObjs is the set of ObjKey strings for struct fields and
	// package-level vars accessed through sync/atomic calls.
	AtomicObjs map[string]bool
}

// NewFactSet returns an empty fact set.
func NewFactSet() *FactSet {
	return &FactSet{Funcs: make(map[string]*FuncFact), AtomicObjs: make(map[string]bool)}
}

// Func returns the summary for f, or nil when f was never analyzed.
// Nil-safe on both receiver and argument.
func (fs *FactSet) Func(f *types.Func) *FuncFact {
	if fs == nil || f == nil {
		return nil
	}
	return fs.Funcs[FuncKey(f)]
}

// Known reports whether f was analyzed at all (even to an empty
// summary).
func (fs *FactSet) Known(f *types.Func) bool {
	if fs == nil || f == nil {
		return false
	}
	_, ok := fs.Funcs[FuncKey(f)]
	return ok
}

// Merge folds other into fs (other wins on key collisions).
func (fs *FactSet) Merge(other *FactSet) {
	if other == nil {
		return
	}
	for k, v := range other.Funcs {
		fs.Funcs[k] = v
	}
	for k := range other.AtomicObjs {
		fs.AtomicObjs[k] = true
	}
}

// MergeFacts returns a fresh set holding every given set's facts
// (later sets win).
func MergeFacts(sets ...*FactSet) *FactSet {
	out := NewFactSet()
	for _, s := range sets {
		out.Merge(s)
	}
	return out
}

// factFile is the serialized form.
type factFile struct {
	Version    string               `json:"version"`
	Funcs      map[string]*FuncFact `json:"funcs,omitempty"`
	AtomicObjs []string             `json:"atomic_objs,omitempty"`
}

// Encode serializes the set (deterministically: keys sorted by the
// JSON encoder, atomic objs sorted here).
func (fs *FactSet) Encode() []byte {
	ff := factFile{Version: FactsVersion, Funcs: fs.Funcs}
	for k := range fs.AtomicObjs {
		ff.AtomicObjs = append(ff.AtomicObjs, k)
	}
	sort.Strings(ff.AtomicObjs)
	data, err := json.Marshal(ff)
	if err != nil { // a map[string]*struct cannot fail to marshal
		panic(err)
	}
	return data
}

// DecodeFacts parses a fact file. A file written by a different engine
// revision (or not a fact file at all) returns an error; callers treat
// that as "no facts" rather than failing the run.
func DecodeFacts(data []byte) (*FactSet, error) {
	var ff factFile
	if err := json.Unmarshal(data, &ff); err != nil {
		return nil, fmt.Errorf("analysis: not a fact file: %v", err)
	}
	if ff.Version != FactsVersion {
		return nil, fmt.Errorf("analysis: fact version %q, want %q (stale)", ff.Version, FactsVersion)
	}
	fs := NewFactSet()
	for k, v := range ff.Funcs {
		fs.Funcs[k] = v
	}
	for _, k := range ff.AtomicObjs {
		fs.AtomicObjs[k] = true
	}
	return fs, nil
}

// FuncKey renders the stable cross-package identity of a function:
// "pkgpath.Name" for package functions, "(pkgpath.Type).Method" for
// methods (value and pointer receivers share a key).
func FuncKey(f *types.Func) string {
	sig, _ := f.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := Deref(sig.Recv().Type())
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
			return "(" + named.Obj().Pkg().Path() + "." + named.Obj().Name() + ")." + f.Name()
		}
		return "(?)." + f.Name() // interface or anonymous receiver: not exportable
	}
	if f.Pkg() == nil {
		return f.Name()
	}
	return f.Pkg().Path() + "." + f.Name()
}

// ObjKey renders the stable identity of a struct field or
// package-level variable for the atomic-access fact set:
// "pkgpath.Type.field" for fields (keyed through the selector's
// receiver type), "pkgpath.name" for package vars. Local variables
// have no stable identity and return "".
func ObjKey(info *types.Info, expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		sel := info.Selections[e]
		if sel == nil || sel.Kind() != types.FieldVal {
			// Package-qualified var (pkg.V) resolves through Uses.
			if obj, ok := info.Uses[e.Sel].(*types.Var); ok && obj.Pkg() != nil && isPkgLevel(obj) {
				return obj.Pkg().Path() + "." + obj.Name()
			}
			return ""
		}
		named, ok := Deref(sel.Recv()).(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return ""
		}
		return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + e.Sel.Name
	case *ast.Ident:
		if obj, ok := info.Uses[e].(*types.Var); ok && obj.Pkg() != nil && isPkgLevel(obj) {
			return obj.Pkg().Path() + "." + obj.Name()
		}
	}
	return ""
}

func isPkgLevel(v *types.Var) bool {
	return v.Parent() == v.Pkg().Scope()
}

// ComputeFacts summarizes every function declared in pkg, resolving
// intra-package calls to a fixpoint and cross-package calls through
// the imported facts. Test files contribute no facts: nothing imports
// them.
func ComputeFacts(pkg *Package, imported *FactSet) *FactSet {
	own := NewFactSet()
	type declInfo struct {
		fn   *types.Func
		decl *ast.FuncDecl
	}
	var decls []declInfo
	for _, f := range pkg.Files {
		if file := pkg.Fset.File(f.Pos()); file != nil && strings.HasSuffix(file.Name(), "_test.go") {
			continue
		}
		collectAtomicObjs(pkg, f, own)
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				decls = append(decls, declInfo{fn, fd})
			}
		}
	}
	// Fixpoint: intra-package transitivity (A stores, B calls A, C
	// calls B) converges in at most chain-depth rounds; ten bounds
	// pathological cycles.
	for iter := 0; iter < 10; iter++ {
		merged := MergeFacts(imported, own)
		changed := false
		for _, di := range decls {
			nf := summarize(pkg, di.decl, merged)
			key := FuncKey(di.fn)
			if !own.Funcs[key].equal(nf) {
				changed = true
			}
			own.Funcs[key] = nf
		}
		if !changed {
			break
		}
	}
	return own
}

// collectAtomicObjs records fields/globals whose address is taken by a
// sync/atomic call in f.
func collectAtomicObjs(pkg *Package, f *ast.File, fs *FactSet) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !IsAtomicPkgCall(pkg.Info, call) {
			return true
		}
		for _, arg := range call.Args {
			ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || ue.Op != token.AND {
				continue
			}
			if key := ObjKey(pkg.Info, ue.X); key != "" {
				fs.AtomicObjs[key] = true
			}
		}
		return true
	})
}

// IsAtomicPkgCall reports whether call invokes a sync/atomic
// package-level function (AddInt32, LoadUint64, StorePointer, ...).
// Methods on the typed atomics (atomic.Int64 etc.) are not included:
// those fields cannot be accessed plainly in the first place.
func IsAtomicPkgCall(info *types.Info, call *ast.CallExpr) bool {
	fn := CalleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" &&
		fn.Type().(*types.Signature).Recv() == nil
}

// summarize computes one function's FuncFact given the current merged
// fact view.
func summarize(pkg *Package, decl *ast.FuncDecl, facts *FactSet) *FuncFact {
	info := pkg.Info
	// Param index per object. Receivers are tracked as aliases (so
	// s.f = p still scans p) but never indexed.
	paramIdx := make(map[types.Object]int)
	idx := 0
	if decl.Type.Params != nil {
		for _, field := range decl.Type.Params.List {
			if len(field.Names) == 0 {
				idx++ // unnamed param still occupies an index
				continue
			}
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					paramIdx[obj] = idx
				}
				idx++
			}
		}
	}
	// Alias groups: a local assigned (or sliced) from a param joins
	// the param's group. Two passes handle declaration order.
	alias := make(map[types.Object]int, len(paramIdx))
	for o, i := range paramIdx {
		alias[o] = i
	}
	for pass := 0; pass < 2; pass++ {
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i := range as.Lhs {
				src := aliasSource(info, alias, as.Rhs[i])
				if src < 0 {
					continue
				}
				if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
					if obj := info.Defs[id]; obj != nil {
						alias[obj] = src
					} else if obj := info.Uses[id]; obj != nil && !isPkgLevelVar(obj) {
						alias[obj] = src
					}
				}
			}
			return true
		})
	}

	fact := &FuncFact{}
	retained := make(map[int]bool)
	puts := make(map[int]bool)
	ends := make(map[int]bool)

	aliasIdx := func(e ast.Expr) int { return aliasOf(info, alias, e) }

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if !retainingLHS(info, lhs) {
					continue
				}
				// Any aliased param appearing bare on the RHS side of a
				// retaining store is retained. append(dst, p...) copies
				// contents and is excluded by aliasesIn.
				for _, rhs := range n.Rhs {
					for _, i := range aliasesIn(info, alias, rhs) {
						retained[i] = true
					}
				}
			}
		case *ast.CompositeLit:
			// A param placed in a composite literal can outlive the
			// call through whatever the literal flows into.
			for _, elt := range n.Elts {
				e := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if i := aliasIdx(e); i >= 0 {
					retained[i] = true
				}
			}
		case *ast.GoStmt:
			// A goroutine capturing the param keeps it alive past the
			// call's return.
			for _, i := range aliasesIn(info, alias, n.Call) {
				retained[i] = true
			}
		case *ast.ReturnStmt:
			// Returning a param hands the alias back to the caller —
			// not retention in the stored sense; bufown treats escape
			// via return at the Get site instead.
		case *ast.SendStmt:
			fact.Blocks = true
			if i := aliasIdx(n.Value); i >= 0 {
				retained[i] = true // the receiver end may hold it forever
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				fact.Blocks = true
			}
		case *ast.SelectStmt:
			fact.Blocks = true
		case *ast.CallExpr:
			summarizeCall(pkg, n, facts, alias, retained, puts, ends, fact)
		}
		return true
	})
	// Deferred calls of a func(error) param count as ending it.
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		for _, i := range endCallTargets(info, alias, ds.Call) {
			ends[i] = true
		}
		return true
	})

	if len(InfiniteLoops(pkg.Info, decl.Body)) > 0 {
		fact.LoopsForever = true
	}
	fact.Retains = sortedKeys(retained)
	fact.Puts = sortedKeys(puts)
	for i := range ends {
		if isErrFuncParam(decl, info, i) {
			fact.EndsSpan = append(fact.EndsSpan, i)
		}
	}
	sort.Ints(fact.EndsSpan)
	return fact
}

// summarizeCall folds one call expression into the summary: callee
// facts (retention/puts/ends transitivity), sync.Pool Put, known
// blockers.
func summarizeCall(pkg *Package, call *ast.CallExpr, facts *FactSet,
	alias map[types.Object]int, retained, puts, ends map[int]bool, fact *FuncFact) {
	info := pkg.Info
	fn := CalleeFunc(info, call)

	// p(...) where p is a func(error) param: the span-closer shape.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil {
			if i, ok := alias[obj]; ok && i >= 0 {
				ends[i] = true
			}
		}
	}

	if fn == nil {
		return
	}
	if isPoolPut(fn) {
		for _, arg := range call.Args {
			if i := aliasOf(info, alias, arg); i >= 0 {
				puts[i] = true
			}
		}
		return
	}
	if isKnownBlocker(fn) {
		fact.Blocks = true
	}
	callee := facts.Func(fn)
	if callee == nil {
		return
	}
	if callee.Blocks {
		fact.Blocks = true
	}
	for argI, arg := range call.Args {
		i := aliasOf(info, alias, arg)
		if i < 0 {
			continue
		}
		if callee.RetainsParam(argI) {
			retained[i] = true
		}
		if callee.PutsParam(argI) {
			puts[i] = true
		}
		if callee.EndsSpanParam(argI) {
			ends[i] = true
		}
	}
}

// endCallTargets resolves which param indices a call ends: a direct
// deferred p(...) or a deferred callee with EndsSpan facts would be
// handled by summarizeCall's inspection, but defer bodies need the
// direct-ident case repeated here.
func endCallTargets(info *types.Info, alias map[types.Object]int, call *ast.CallExpr) []int {
	var out []int
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil {
			if i, ok := alias[obj]; ok && i >= 0 {
				out = append(out, i)
			}
		}
	}
	return out
}

// isErrFuncParam reports whether declared param i has type func(error)
// — the span-closer signature.
func isErrFuncParam(decl *ast.FuncDecl, info *types.Info, i int) bool {
	idx := 0
	if decl.Type.Params == nil {
		return false
	}
	for _, field := range decl.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if i >= idx && i < idx+n {
			t, ok := info.Types[field.Type]
			if !ok {
				return false
			}
			return IsSpanCloserType(t.Type)
		}
		idx += n
	}
	return false
}

// IsSpanCloserType reports whether t is func(error) — the type of the
// closer StartSpan/ContinueSpan return.
func IsSpanCloserType(t types.Type) bool {
	sig, ok := types.Unalias(t).(*types.Signature)
	if !ok || sig.Results().Len() != 0 || sig.Params().Len() != 1 {
		return false
	}
	pt := types.Unalias(sig.Params().At(0).Type())
	named, ok := pt.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// aliasOf resolves e to a param alias group, or -1.
func aliasOf(info *types.Info, alias map[types.Object]int, e ast.Expr) int {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return -1
	}
	obj := info.Uses[id]
	if obj == nil {
		return -1
	}
	if i, ok := alias[obj]; ok {
		return i
	}
	return -1
}

// aliasSource reports which alias group an RHS expression propagates
// (ident or slice of an alias), or -1.
func aliasSource(info *types.Info, alias map[types.Object]int, e ast.Expr) int {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return aliasOf(info, alias, e)
	case *ast.SliceExpr:
		return aliasSource(info, alias, e.X)
	case *ast.TypeAssertExpr:
		return aliasSource(info, alias, e.X)
	}
	return -1
}

// aliasesIn collects the distinct alias groups referenced bare inside
// e. A final `x...` argument of append is excluded: spreading copies
// the contents, it does not retain the slice header.
func aliasesIn(info *types.Info, alias map[types.Object]int, e ast.Expr) []int {
	var skip ast.Expr
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok && call.Ellipsis != token.NoPos && len(call.Args) > 0 {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				skip = call.Args[len(call.Args)-1]
			}
		}
	}
	seen := make(map[int]bool)
	var out []int
	ast.Inspect(e, func(n ast.Node) bool {
		if n == skip {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			// closures are scanned too: capturing counts as reference
			return true
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if i, ok := alias[obj]; ok && i >= 0 && !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
		return true
	})
	sort.Ints(out)
	return out
}

// retainingLHS reports whether storing into lhs makes the value
// outlive the function: a field, a map/slice element, or a
// package-level variable.
func retainingLHS(info *types.Info, lhs ast.Expr) bool {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return true
	case *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.Ident:
		if obj, ok := info.Uses[e].(*types.Var); ok {
			return isPkgLevelVar(obj)
		}
	}
	return false
}

func isPkgLevelVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// isPoolPut reports whether fn is (*sync.Pool).Put.
func isPoolPut(fn *types.Func) bool {
	if fn.Name() != "Put" {
		return false
	}
	sig := fn.Type().(*types.Signature)
	return sig.Recv() != nil && IsNamed(sig.Recv().Type(), "sync", "Pool")
}

// IsPoolGet reports whether call invokes (*sync.Pool).Get.
func IsPoolGet(info *types.Info, call *ast.CallExpr) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Name() != "Get" {
		return false
	}
	sig := fn.Type().(*types.Signature)
	return sig.Recv() != nil && IsNamed(sig.Recv().Type(), "sync", "Pool")
}

// IsPoolPutCall reports whether call invokes (*sync.Pool).Put.
func IsPoolPutCall(info *types.Info, call *ast.CallExpr) bool {
	fn := CalleeFunc(info, call)
	return fn != nil && isPoolPut(fn)
}

// isKnownBlocker covers the stdlib operations locksafe already treats
// as blocking.
func isKnownBlocker(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "time":
		return fn.Name() == "Sleep"
	case "sync":
		return fn.Name() == "Wait" || fn.Name() == "Lock" || fn.Name() == "RLock"
	}
	return false
}

func sortedKeys(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// doneishName matches channel names that signal goroutine shutdown.
var doneishName = regexp.MustCompile(`(?i)(done|stop|quit|exit|clos|shutdown|term|cancel|die|kill)`)

// InfiniteLoops returns the condition-less for loops under root (not
// descending into nested function literals) that have no visible exit:
// no return, no break out of the loop, no receive/select on a
// context.Done() or shutdown-named channel, no panic/os.Exit/
// log.Fatal, and no runtime.Goexit.
func InfiniteLoops(info *types.Info, root ast.Node) []*ast.ForStmt {
	var out []*ast.ForStmt
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false // separate goroutine bodies are analyzed at their go stmt
			case *ast.ForStmt:
				if m.Cond == nil && !loopExits(info, m) {
					out = append(out, m)
				}
			}
			return true
		})
	}
	walk(root)
	return out
}

// loopExits reports whether a condition-less loop has a visible
// termination path.
func loopExits(info *types.Info, loop *ast.ForStmt) bool {
	exits := false
	// depth counts enclosing break-absorbing statements inside the
	// loop: an unlabeled break at depth 0 exits our loop; inside a
	// nested for/select/switch it does not.
	var scan func(n ast.Node, depth int)
	scan = func(n ast.Node, depth int) {
		if exits || n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return
		case *ast.ReturnStmt:
			exits = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK && (n.Label != nil || depth == 0) {
				// A labeled break is assumed to target an enclosing
				// loop (ours or outer — either way control leaves us).
				exits = true
			}
			if n.Tok == token.GOTO {
				exits = true // assume the jump leaves the loop
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && doneishChan(info, n.X) {
				exits = true
			}
			scan(n.X, depth)
		case *ast.CallExpr:
			if neverReturns(info, n) {
				exits = true
			}
			for _, a := range n.Args {
				scan(a, depth)
			}
			scan(n.Fun, depth)
		case *ast.ForStmt:
			scanChildren(n, depth+1, scan)
		case *ast.RangeStmt:
			scanChildren(n, depth+1, scan)
		case *ast.SelectStmt:
			for _, c := range n.Body.List {
				cc := c.(*ast.CommClause)
				if comm := cc.Comm; comm != nil {
					// a case receiving from a done-ish channel is an
					// exit only if its body leaves the loop — but a
					// ctx.Done() case virtually always returns/breaks;
					// require the explicit exit in the body instead.
					scan(comm, depth+1)
				}
				for _, s := range cc.Body {
					scan(s, depth+1)
				}
			}
		case *ast.SwitchStmt:
			scanChildren(n, depth+1, scan)
		case *ast.TypeSwitchStmt:
			scanChildren(n, depth+1, scan)
		default:
			scanChildren(n, depth, scan)
		}
	}
	for _, s := range loop.Body.List {
		scan(s, 0)
		if exits {
			return true
		}
	}
	return exits
}

// scanChildren applies scan to every direct child of n at the given
// depth.
func scanChildren(n ast.Node, depth int, scan func(ast.Node, int)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == n {
			return true
		}
		scan(m, depth)
		return false
	})
}

// doneishChan reports whether e looks like a shutdown signal: a
// context.Context Done() call or a channel whose name says stop.
func doneishChan(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		fn := CalleeFunc(info, e)
		return fn != nil && fn.Name() == "Done"
	case *ast.Ident:
		return doneishName.MatchString(e.Name)
	case *ast.SelectorExpr:
		return doneishName.MatchString(e.Sel.Name)
	}
	return false
}

// neverReturns reports whether the call is panic/os.Exit/log.Fatal* /
// runtime.Goexit — calls that terminate the goroutine or process.
func neverReturns(info *types.Info, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" && info.Uses[id] == nil {
		return true
	}
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "os":
		return fn.Name() == "Exit"
	case "log":
		return strings.HasPrefix(fn.Name(), "Fatal") || strings.HasPrefix(fn.Name(), "Panic")
	case "runtime":
		return fn.Name() == "Goexit"
	}
	return false
}
