// Package respfront is a fixture shaped like a protocol front end: a
// per-connection handler encoding replies through a bufio.Writer. A
// reply flush that fails is the only signal the peer is gone — dropping
// it leaves the handler serving a dead connection.
package respfront

import (
	"bufio"
	"net"
)

type conn struct {
	nc net.Conn
	bw *bufio.Writer
}

// dropsFlush loses the only error that reports the peer went away.
func dropsFlush(c *conn) {
	c.bw.WriteString("+OK\r\n")
	c.bw.Flush() // want `Flush error dropped on the storage write path`
}

// serveLoop flushes correctly: the error tears the connection down.
func serveLoop(c *conn) {
	defer c.nc.Close()
	for {
		c.bw.WriteString("+PONG\r\n")
		if err := c.bw.Flush(); err != nil {
			return
		}
	}
}

// teardown may discard the flush: the reply is best-effort on an
// already-failed connection, and the discard is visible.
func teardown(c *conn) {
	c.bw.WriteString("-ERR protocol error\r\n")
	_ = c.bw.Flush()
	c.nc.Close() // net.Conn is a bare interface: no package identity, not flagged
}
