// Package blockfs is a fixture standing in for the storage layer: its
// Close/Flush/Sync errors surface buffered write failures.
package blockfs

type Writer struct{}

func (w *Writer) Close() error { return nil }
func (w *Writer) Flush() error { return nil }
func (w *Writer) Sync() error  { return nil }
func (w *Writer) Name() string { return "" }
func (w *Writer) Reset()       {}
