// Package store is a fixture exercising both errflow rules from the
// consumer side.
package store

import (
	"errors"
	"os"

	"blockfs"
)

func drops(w *blockfs.Writer) {
	w.Close() // want `Close error dropped on the storage write path`
	w.Flush() // want `Flush error dropped on the storage write path`
	w.Sync()  // want `Sync error dropped on the storage write path`
	w.Name()  // no error to drop
	w.Reset() // no error to drop
}

func dropsFile(f *os.File) {
	f.Close() // want `Close error dropped on the storage write path`
}

func checked(w *blockfs.Writer) error {
	if err := w.Flush(); err != nil {
		return err
	}
	return w.Close()
}

func deferred(w *blockfs.Writer) {
	// Deferred closes are teardown idiom, not silent data loss.
	defer w.Close()
}

func discarded(w *blockfs.Writer) {
	// An explicit discard is a visible decision.
	_ = w.Close()
}

func suppressed(w *blockfs.Writer) {
	//lint:ignore errflow the write already failed on this path; its error wins
	w.Close()
}

func firstErrLoop(ws []*blockfs.Writer) error {
	var firstErr error
	for _, w := range ws {
		if err := w.Close(); err != nil && firstErr == nil {
			firstErr = err // want `loop keeps only the first error in firstErr; aggregate every replica failure with errors.Join`
		}
	}
	return firstErr
}

func joinedLoop(ws []*blockfs.Writer) error {
	var errs []error
	for _, w := range ws {
		if err := w.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

func firstErrFor(ws []*blockfs.Writer) error {
	var firstErr error
	for i := 0; i < len(ws); i++ {
		if err := ws[i].Sync(); err != nil && firstErr == nil {
			firstErr = err // want `loop keeps only the first error in firstErr; aggregate every replica failure with errors.Join`
		}
	}
	return firstErr
}

func lastErrOutsideLoop(w *blockfs.Writer) error {
	// Outside a loop there is only one error; keeping it is fine.
	var retErr error
	if err := w.Close(); err != nil && retErr == nil {
		retErr = err
	}
	return retErr
}
