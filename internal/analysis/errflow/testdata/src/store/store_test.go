// Test files are exempt: dropping a Close error in test teardown does
// not mask production data loss.
package store

import "blockfs"

func dropInTest(w *blockfs.Writer) {
	w.Close()
}

func firstErrInTest(ws []*blockfs.Writer) error {
	var firstErr error
	for _, w := range ws {
		if err := w.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
