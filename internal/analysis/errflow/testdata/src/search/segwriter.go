// Package search is a fixture mirroring the postings SegmentWriter:
// Close seals the version by writing the index meta record, so a
// dropped Close error publishes a segment that may never have been
// sealed.
package search

type SegmentWriter struct{}

func (w *SegmentWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *SegmentWriter) Close() error                { return nil }
func (w *SegmentWriter) Abort() error                { return nil }

func publishDropped(w *SegmentWriter, data []byte) {
	_, _ = w.Write(data)
	w.Close() // want `Close error dropped on the storage write path`
}

func publishChecked(w *SegmentWriter, data []byte) error {
	if _, err := w.Write(data); err != nil {
		return err
	}
	// The seal is the moment the version becomes visible: its error
	// must propagate.
	return w.Close()
}

func publishAborted(w *SegmentWriter) {
	// An explicit discard on the abort path is a visible decision: the
	// original write error is the one the caller reports.
	_ = w.Abort()
}

func publishDeferred(w *SegmentWriter) {
	// Deferred closes are teardown idiom, not silent data loss.
	defer w.Close()
}

func sealMany(ws []*SegmentWriter) error {
	var firstErr error
	for _, w := range ws {
		if err := w.Close(); err != nil && firstErr == nil {
			firstErr = err // want `loop keeps only the first error in firstErr; aggregate every replica failure with errors.Join`
		}
	}
	return firstErr
}
