// Package errflow guards error handling on the storage write path and
// in replica fan-outs:
//
//  1. A dropped error from Close/Flush/Sync on a storage-path type
//     (internal/blockfs, internal/aof, internal/core, internal/lsm,
//     internal/search, plus os.File and bufio.Writer) is flagged when
//     the call stands alone as a statement. These are the calls that surface buffered
//     write failures — dropping one turns data loss silent. Deferred
//     closes and explicit `_ =` discards are accepted (the former is
//     teardown idiom, the latter a visible decision).
//  2. A loop that funnels many errors into "keep the first one"
//     (`if err != nil && firstErr == nil { firstErr = err }`) is
//     flagged: multi-replica loops must aggregate with errors.Join so
//     no replica's failure is masked.
package errflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"directload/internal/analysis"
)

// Analyzer is the errflow check.
var Analyzer = &analysis.Analyzer{
	Name: "errflow",
	Doc:  "no dropped Close/Flush/Sync errors on write paths; no first-error-only loops",
	Run:  run,
}

// storagePkgs are the packages whose Close/Flush/Sync errors are
// durability-relevant.
var storagePkgs = []string{"blockfs", "aof", "core", "lsm", "search"}

var checkedMethods = map[string]bool{"Close": true, "Flush": true, "Sync": true}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if !analysis.IsTestFile(pass, n) {
					checkDroppedError(pass, n)
				}
			case *ast.ForStmt:
				if !analysis.IsTestFile(pass, n) {
					checkFirstErrorLoop(pass, n.Body)
				}
			case *ast.RangeStmt:
				if !analysis.IsTestFile(pass, n) {
					checkFirstErrorLoop(pass, n.Body)
				}
			}
			return true
		})
	}
	return nil
}

// checkDroppedError implements rule 1 for one expression statement.
func checkDroppedError(pass *analysis.Pass, stmt *ast.ExprStmt) {
	call, ok := stmt.X.(*ast.CallExpr)
	if !ok {
		return
	}
	f := analysis.CalleeFunc(pass.TypesInfo, call)
	if f == nil || !checkedMethods[f.Name()] {
		return
	}
	sig := f.Type().(*types.Signature)
	if sig.Recv() == nil || !returnsError(sig) {
		return
	}
	if !storageReceiver(sig.Recv().Type()) {
		return
	}
	pass.Reportf(call.Pos(),
		"%s error dropped on the storage write path; check it (or discard explicitly with `_ =` and a reason)", f.Name())
}

func returnsError(sig *types.Signature) bool {
	for i := 0; i < sig.Results().Len(); i++ {
		t := types.Unalias(sig.Results().At(i).Type())
		if named, ok := t.(*types.Named); ok &&
			named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			return true
		}
	}
	return false
}

// storageReceiver reports whether the method's receiver type belongs
// to a storage-path package (or is os.File / bufio.Writer).
func storageReceiver(t types.Type) bool {
	t = analysis.Deref(t)
	var obj *types.TypeName
	switch t := t.(type) {
	case *types.Named:
		obj = t.Obj()
	case *types.Interface:
		return false // bare interfaces carry no package identity
	default:
		return false
	}
	if obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	if path == "os" && obj.Name() == "File" {
		return true
	}
	if path == "bufio" && obj.Name() == "Writer" {
		return true
	}
	for _, p := range storagePkgs {
		if analysis.PkgPathMatches(path, p) {
			return true
		}
	}
	return false
}

// checkFirstErrorLoop implements rule 2 over one loop body.
func checkFirstErrorLoop(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		for _, stmt := range ifs.Body.List {
			as, ok := stmt.(*ast.AssignStmt)
			if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 {
				continue
			}
			lhs, ok := as.Lhs[0].(*ast.Ident)
			if !ok || lhs.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.Uses[lhs]
			if obj == nil || !isErrorType(obj.Type()) {
				continue
			}
			if condTestsObjNil(pass, ifs.Cond, obj) {
				pass.Reportf(as.Pos(),
					"loop keeps only the first error in %s; aggregate every replica failure with errors.Join", lhs.Name)
			}
		}
		return true
	})
}

func isErrorType(t types.Type) bool {
	t = types.Unalias(t)
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// condTestsObjNil reports whether cond contains `obj == nil`.
func condTestsObjNil(pass *analysis.Pass, cond ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != token.EQL || found {
			return !found
		}
		x, xok := ast.Unparen(be.X).(*ast.Ident)
		y, yok := ast.Unparen(be.Y).(*ast.Ident)
		if xok && pass.TypesInfo.Uses[x] == obj && yok && y.Name == "nil" {
			found = true
		}
		if yok && pass.TypesInfo.Uses[y] == obj && xok && x.Name == "nil" {
			found = true
		}
		return !found
	})
	return found
}
