package errflow_test

import (
	"testing"

	"directload/internal/analysis/analysistest"
	"directload/internal/analysis/errflow"
)

func TestErrFlow(t *testing.T) {
	analysistest.Run(t, "testdata", errflow.Analyzer, "store")
}
