package errflow_test

import (
	"testing"

	"directload/internal/analysis/analysistest"
	"directload/internal/analysis/errflow"
)

func TestErrFlow(t *testing.T) {
	analysistest.Run(t, "testdata", errflow.Analyzer, "store")
}

// TestErrFlowRESPFront covers the protocol-front-end shape: reply
// flushes through bufio.Writer inside a connection handler.
func TestErrFlowRESPFront(t *testing.T) {
	analysistest.Run(t, "testdata", errflow.Analyzer, "respfront")
}

// TestErrFlowSearch covers the postings segment writer: Close seals
// the published version, so its error is durability-relevant.
func TestErrFlowSearch(t *testing.T) {
	analysistest.Run(t, "testdata", errflow.Analyzer, "search")
}
