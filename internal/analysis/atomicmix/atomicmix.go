// Package atomicmix flags plain reads and writes of memory that is
// accessed through sync/atomic anywhere in the module. Mixing the two
// is a data race even when it "works": the race detector only catches
// the schedules it sees, and a plain load can legally observe a torn
// or stale value.
//
// Two scopes are tracked:
//
//   - package-level variables and named struct fields, keyed by
//     ObjKey and shared across packages through the facts engine
//     (AtomicObjs) — a field atomically updated in package A may not
//     be read plainly in package B;
//   - function-local variables (including slice elements, as in
//     `atomic.AddInt32(&acks[i], 1)`), tracked per file by object
//     identity.
//
// Taking the address for the atomic call itself is of course fine;
// everything else — including handing the address elsewhere — is not.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"

	"directload/internal/analysis"
)

// Analyzer is the atomicmix check.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc:  "memory accessed via sync/atomic must never be read or written plainly",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass, f) {
			continue
		}
		checkFile(pass, f)
	}
	return nil
}

// localRoot describes a function-local variable used atomically.
type localRoot struct {
	elem bool // the atomic op targeted an element (&xs[i]), not the var itself
}

func checkFile(pass *analysis.Pass, f *ast.File) {
	info := pass.TypesInfo

	// Pass 1: what is accessed atomically, and which source ranges are
	// the sanctioned &x operands of those calls.
	locals := map[types.Object]localRoot{}
	sanctioned := []ast.Node{}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !analysis.IsAtomicPkgCall(info, call) {
			return true
		}
		for _, arg := range call.Args {
			ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || ue.Op != token.AND {
				continue
			}
			sanctioned = append(sanctioned, ue)
			target := ast.Unparen(ue.X)
			elem := false
			if ix, ok := target.(*ast.IndexExpr); ok {
				target = ast.Unparen(ix.X)
				elem = true
			}
			if id, ok := target.(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok && !isPkgLevel(v) {
					if old, seen := locals[v]; !seen || (old.elem && !elem) {
						locals[v] = localRoot{elem: elem}
					}
				}
			}
		}
		return true
	})

	atomicKeys := pass.Facts.AtomicObjs

	inSanctioned := func(pos token.Pos) bool {
		for _, s := range sanctioned {
			if s.Pos() <= pos && pos < s.End() {
				return true
			}
		}
		return false
	}

	// Pass 2: flag plain accesses to anything pass 1 (or an imported
	// fact) marked atomic.
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if key := analysis.ObjKey(info, n); key != "" && atomicKeys[key] {
				if !inSanctioned(n.Pos()) {
					pass.Reportf(n.Pos(), "plain access to %s, which is accessed via sync/atomic elsewhere: use the matching atomic.Load/Store", key)
				}
				return false
			}
		case *ast.IndexExpr:
			base, ok := ast.Unparen(n.X).(*ast.Ident)
			if !ok {
				return true
			}
			if v, ok := info.Uses[base].(*types.Var); ok {
				if _, tracked := locals[v]; tracked && !inSanctioned(n.Pos()) {
					pass.Reportf(n.Pos(), "plain access to element of %s, whose elements are accessed via sync/atomic: use atomic.Load/Store", base.Name)
					return false
				}
			}
		case *ast.Ident:
			if key := analysis.ObjKey(info, n); key != "" && atomicKeys[key] {
				if !inSanctioned(n.Pos()) {
					pass.Reportf(n.Pos(), "plain access to %s, which is accessed via sync/atomic elsewhere: use the matching atomic.Load/Store", key)
				}
				return false
			}
			v, ok := info.Uses[n].(*types.Var)
			if !ok {
				return true
			}
			root, tracked := locals[v]
			if !tracked || inSanctioned(n.Pos()) {
				return true
			}
			if root.elem {
				// The slice header itself may be read (len, range
				// index, passing the slice); only element access is
				// racy, and the IndexExpr case catches that.
				return true
			}
			pass.Reportf(n.Pos(), "plain access to %s, which is accessed via sync/atomic: use the matching atomic.Load/Store", n.Name)
		}
		return true
	})
}

func isPkgLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}
