// Package statsuser reads stats' counters plainly; only the imported
// AtomicObjs facts reveal that stats updates them via sync/atomic.
package statsuser

import (
	"sync/atomic"

	"stats"
)

// Report mixes plain loads into another package's atomics.
func Report(s *stats.Stats) int64 {
	h := s.Hits      // want `plain access to stats.Stats.Hits`
	t := stats.Total // want `plain access to stats.Total`
	return h + t
}

// ReportAtomic is the quiet counterpart.
func ReportAtomic(s *stats.Stats) int64 {
	return atomic.LoadInt64(&s.Hits) + atomic.LoadInt64(&stats.Total)
}
