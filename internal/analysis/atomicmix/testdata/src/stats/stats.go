// Package stats is the imported side of atomicmix's interprocedural
// case: its atomic objects (a package var and an exported field)
// travel to statsuser as facts.
package stats

import "sync/atomic"

// Stats counts hits; Hits is only ever touched via sync/atomic here.
type Stats struct{ Hits int64 }

// Total is the package-wide counter.
var Total int64

func (s *Stats) Record() { atomic.AddInt64(&s.Hits, 1) }

func Bump() { atomic.AddInt64(&Total, 1) }

// Snapshot reads both the right way.
func Snapshot(s *Stats) (int64, int64) {
	return atomic.LoadInt64(&s.Hits), atomic.LoadInt64(&Total)
}
