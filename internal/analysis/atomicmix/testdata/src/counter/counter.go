// Package counter exercises atomicmix within one package: package
// vars, struct fields, plain locals and slice elements.
package counter

import "sync/atomic"

var hits int64

type gauge struct{ n int64 }

// inc marks hits atomic for the whole module.
func inc() { atomic.AddInt64(&hits, 1) }

// read mixes in a plain load.
func read() int64 {
	return hits // want `plain access to counter.hits`
}

// readAtomic is the correct counterpart.
func readAtomic() int64 {
	return atomic.LoadInt64(&hits)
}

func (g *gauge) bump() { atomic.AddInt64(&g.n, 1) }

// peek plainly reads a field bump updates atomically.
func (g *gauge) peek() int64 {
	return g.n // want `plain access to counter.gauge.n`
}

// ackLoop is the fleet-ack shape: elements written atomically from
// goroutines, then read plainly.
func ackLoop(n int) int {
	acks := make([]int32, n)
	for i := 0; i < n; i++ {
		go atomic.AddInt32(&acks[i], 1)
	}
	total := 0
	for i := range acks {
		total += int(acks[i]) // want `plain access to element of acks`
	}
	return total
}

// ackLoopAtomic reads the elements the right way; the slice header
// itself (len, range) is fair game.
func ackLoopAtomic(n int) int {
	acks := make([]int32, n)
	for i := 0; i < n; i++ {
		go atomic.AddInt32(&acks[i], 1)
	}
	total := 0
	for i := 0; i < len(acks); i++ {
		total += int(atomic.LoadInt32(&acks[i]))
	}
	return total
}

// localMix stores plainly into a local it also loads atomically.
func localMix() int64 {
	var v int64
	v = 9 // want `plain access to v`
	return atomic.LoadInt64(&v)
}

// plainOnly never touches atomics: nothing to flag.
func plainOnly() int64 {
	var v int64
	v = 7
	return v
}
