package atomicmix_test

import (
	"testing"

	"directload/internal/analysis/analysistest"
	"directload/internal/analysis/atomicmix"
)

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, "testdata", atomicmix.Analyzer, "counter")
}

// TestAtomicMixInterprocedural needs stats' imported facts: Report
// fires only because stats' AtomicObjs summary marks Hits and Total.
func TestAtomicMixInterprocedural(t *testing.T) {
	analysistest.Run(t, "testdata", atomicmix.Analyzer, "statsuser")
}
