// Package analysistest runs an analyzer over fixture packages and
// checks its findings against `// want` comments, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under <testdata>/src/<pkg>/*.go. A line expecting a
// finding carries a trailing comment:
//
//	conn.Close() // want `dropped error`
//
// The backquoted string is a regular expression that must match the
// message of a finding reported on that line. Lines with no want
// comment must produce no findings. A line may carry several want
// patterns separated by ` want `; each must match a distinct finding.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"directload/internal/analysis"
)

var wantRe = regexp.MustCompile("// want (`[^`]*`|\"[^\"]*\")((?: `[^`]*`| \"[^\"]*\")*)")

// Run loads each fixture package and verifies the analyzer's findings
// match the fixtures' want comments exactly.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loader := analysis.NewLoader(testdata)
	for _, pkgPath := range pkgs {
		pkg, err := loader.Load(pkgPath)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", pkgPath, err)
		}
		diags, _, err := analysis.RunWithFacts(pkg, loader.ImportedFacts(pkg), []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
		}
		checkWants(t, loader.Fset, pkg, diags)
	}
}

type wantKey struct {
	file string
	line int
}

// collectWants parses want comments out of the fixture sources.
func collectWants(t *testing.T, fset *token.FileSet, pkg *analysis.Package) map[wantKey][]*regexp.Regexp {
	t.Helper()
	wants := make(map[wantKey][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "want ") && strings.Contains(c.Text, "`") {
						t.Fatalf("%s: malformed want comment: %s", fset.Position(c.Pos()), c.Text)
					}
					continue
				}
				pos := fset.Position(c.Pos())
				key := wantKey{pos.Filename, pos.Line}
				for _, pat := range append([]string{m[1]}, strings.Fields(m[2])...) {
					pat = strings.Trim(pat, "`\"")
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}

func checkWants(t *testing.T, fset *token.FileSet, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, fset, pkg)
	matched := make(map[wantKey][]bool)
	for _, d := range diags {
		key := wantKey{d.Pos.Filename, d.Pos.Line}
		pats := wants[key]
		if matched[key] == nil {
			matched[key] = make([]bool, len(pats))
		}
		found := false
		for i, re := range pats {
			if !matched[key][i] && re.MatchString(d.Message) {
				matched[key][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected finding at %s: %s", posString(d), d.Message)
		}
	}
	for key, pats := range wants {
		for i, re := range pats {
			if matched[key] == nil || !matched[key][i] {
				t.Errorf("%s:%d: expected finding matching %q, got none", key.file, key.line, re)
			}
		}
	}
}

func posString(d analysis.Diagnostic) string {
	return fmt.Sprintf("%s:%d:%d", d.Pos.Filename, d.Pos.Line, d.Pos.Column)
}
