// Command mainprog is a fixture proving binaries are exempt: a main
// package legitimately mints root contexts wherever it likes.
package main

import "context"

func work(ctx context.Context) error { return ctx.Err() }

func run(ctx context.Context) error {
	return work(context.Background())
}

func main() {
	_ = run(context.TODO())
}
