// Package flow is a fixture for the one-trace context rules: no fresh
// roots while a ctx is in scope, no exported function dropping its ctx.
package flow

import "context"

func do(ctx context.Context, s string) error {
	_ = s
	return ctx.Err()
}

func plain(s string) string { return s }

// Publish threads its ctx: the good case.
func Publish(ctx context.Context, s string) error {
	return do(ctx, s)
}

// Republish severs the trace with a fresh root.
func Republish(ctx context.Context) error {
	_ = ctx
	return do(context.Background(), "x") // want `context.Background\(\) minted while a context.Context parameter is in scope`
}

// Retry does the same with TODO.
func Retry(ctx context.Context) error {
	_ = ctx
	return do(context.TODO(), "y") // want `context.TODO\(\) minted while a context.Context parameter is in scope`
}

// Root has no ctx parameter, so minting a root is legitimate.
func Root() error {
	return do(context.Background(), "z")
}

// Spawn's literal inherits the enclosing ctx scope.
func Spawn(ctx context.Context) func() error {
	_ = ctx
	return func() error {
		return do(context.Background(), "w") // want `context.Background\(\) minted while a context.Context parameter is in scope`
	}
}

// Handler's literal brings its own ctx into scope.
func Handler() func(context.Context) error {
	return func(ctx context.Context) error {
		return do(context.Background(), "v") // want `context.Background\(\) minted while a context.Context parameter is in scope`
	}
}

type Client struct {
	base context.Context
}

// Drop accepts a ctx, never uses it, and hands a different context to a
// context-accepting callee: the silent trace break.
func (c *Client) Drop(ctx context.Context, s string) error { // want `exported Drop drops its ctx parameter`
	return do(c.base, s)
}

// Pure takes a ctx it does not use, but calls nothing that accepts one;
// there is no thread to break.
func Pure(ctx context.Context, n int) int {
	_ = plain("k")
	return n * 2
}

// drop is unexported: internal helpers may stage their ctx use.
func (c *Client) drop(ctx context.Context, s string) error {
	return do(c.base, s)
}

// Blank discards its ctx visibly, which is allowed.
func Blank(_ context.Context, s string) string {
	return plain(s)
}
