package ctxflow_test

import (
	"testing"

	"directload/internal/analysis/analysistest"
	"directload/internal/analysis/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "flow", "mainprog")
}
