// Package ctxflow protects the one-trace property: a request's
// context.Context must thread unbroken through cluster→fleet→wire→
// engine, because the trace span riding it is what stitches a publish
// into a single timeline.
//
// Two rules, applied to library code (package main and _test.go files
// are exempt — binaries and tests legitimately mint root contexts):
//
//  1. A function with a context.Context parameter in (lexical) scope
//     must not mint a fresh root via context.Background() or
//     context.TODO(): doing so severs the trace.
//  2. An exported function whose signature takes a context.Context
//     must actually use it. A ctx accepted and then dropped while the
//     body calls context-accepting callees breaks the thread silently.
package ctxflow

import (
	"go/ast"
	"go/types"

	"directload/internal/analysis"
)

// Analyzer is the ctxflow check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "forbid fresh context roots and dropped ctx params in library code",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || analysis.IsTestFile(pass, fd) {
				continue
			}
			params := ctxParams(pass, fd.Type)
			checkFreshRoots(pass, fd.Body, len(params) > 0)
			if fd.Name.IsExported() {
				checkDroppedCtx(pass, fd, params)
			}
		}
	}
	return nil
}

// ctxParams returns the named context.Context parameter objects of a
// function type.
func ctxParams(pass *analysis.Pass, ft *ast.FuncType) []types.Object {
	var out []types.Object
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.Defs[name]
			if obj != nil && analysis.IsContextType(obj.Type()) {
				out = append(out, obj)
			}
		}
	}
	return out
}

// checkFreshRoots walks a function body flagging context.Background()
// and context.TODO() calls made while a ctx parameter is in scope.
// Nested function literals inherit the enclosing scope; a literal that
// declares its own ctx parameter brings one into scope itself.
func checkFreshRoots(pass *analysis.Pass, body *ast.BlockStmt, ctxInScope bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkFreshRoots(pass, n.Body, ctxInScope || len(ctxParams(pass, n.Type)) > 0)
			return false
		case *ast.CallExpr:
			if !ctxInScope {
				return true
			}
			for _, name := range [...]string{"Background", "TODO"} {
				if analysis.IsPkgCall(pass.TypesInfo, n, "context", name) {
					pass.Reportf(n.Pos(),
						"context.%s() minted while a context.Context parameter is in scope; thread the caller's ctx to keep the trace in one piece", name)
				}
			}
		}
		return true
	})
}

// checkDroppedCtx implements rule 2 for one exported function.
func checkDroppedCtx(pass *analysis.Pass, fd *ast.FuncDecl, params []types.Object) {
	for _, obj := range params {
		if usesObject(pass, fd.Body, obj) {
			continue
		}
		if callee := firstCtxCallee(pass, fd.Body); callee != "" {
			pass.Reportf(fd.Name.Pos(),
				"exported %s drops its ctx parameter: %s accepts a context but never receives it", fd.Name.Name, callee)
		}
	}
}

func usesObject(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}

// firstCtxCallee returns the name of the first callee in body whose
// signature accepts a context.Context parameter, or "".
func firstCtxCallee(pass *analysis.Pass, body *ast.BlockStmt) string {
	name := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := analysis.CalleeFunc(pass.TypesInfo, call)
		if f == nil {
			return true
		}
		sig := f.Type().(*types.Signature)
		for i := 0; i < sig.Params().Len(); i++ {
			if analysis.IsContextType(sig.Params().At(i).Type()) {
				name = f.Name()
				return false
			}
		}
		return true
	})
	return name
}
