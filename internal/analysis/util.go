package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PkgPathMatches reports whether a package path refers to one of
// directload's packages named by its last element(s). It accepts both
// the real module path ("directload/internal/metrics") and the bare
// fixture path the analyzer tests use ("metrics"), so the same
// analyzer logic runs unchanged against testdata packages.
func PkgPathMatches(path, name string) bool {
	return path == name ||
		path == "directload/internal/"+name ||
		strings.HasSuffix(path, "/internal/"+name)
}

// IsNamed reports whether t (after stripping pointers and aliases) is
// the named type pkgName.typeName, where pkgName is matched with
// PkgPathMatches for directload packages or compared exactly for
// standard-library paths.
func IsNamed(t types.Type, pkgPath, typeName string) bool {
	t = Deref(t)
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != typeName || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == pkgPath || PkgPathMatches(p, pkgPath)
}

// Deref strips aliases and one level of pointer.
func Deref(t types.Type) types.Type {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	return t
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	t = types.Unalias(t)
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// CalleeFunc resolves the *types.Func a call expression invokes, or
// nil for calls through function values, built-ins and conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fn]
	case *ast.SelectorExpr:
		obj = info.Uses[fn.Sel]
	}
	f, _ := obj.(*types.Func)
	return f
}

// IsPkgCall reports whether call invokes the package-level function
// pkgPath.name (e.g. context.Background).
func IsPkgCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	f := CalleeFunc(info, call)
	if f == nil || f.Name() != name || f.Pkg() == nil {
		return false
	}
	if f.Type().(*types.Signature).Recv() != nil {
		return false
	}
	return f.Pkg().Path() == pkgPath
}

// IsMethodCall reports whether call invokes a method named methodName
// whose receiver (after stripping pointers) is pkgPath.typeName. For
// interface types the declared interface counts as the receiver type.
func IsMethodCall(info *types.Info, call *ast.CallExpr, pkgPath, typeName, methodName string) bool {
	f := CalleeFunc(info, call)
	if f == nil || f.Name() != methodName {
		return false
	}
	sig := f.Type().(*types.Signature)
	if sig.Recv() == nil {
		return false
	}
	return IsNamed(sig.Recv().Type(), pkgPath, typeName)
}

// ReceiverExpr returns the expression a method call's selector is
// applied to (nil for plain function calls).
func ReceiverExpr(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// ExprString renders a stable key for an expression, used to identify
// "the same mutex" across Lock/Unlock pairs. It handles the ident and
// selector chains mutexes are held in; anything else renders
// positionally unique and so never pairs up (conservatively).
func ExprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return ExprString(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return "*" + ExprString(e.X)
	case *ast.IndexExpr:
		return ExprString(e.X) + "[...]"
	}
	return "?"
}

// IsTestFile reports whether the file a node belongs to is a _test.go
// file (several analyzers skip test code).
func IsTestFile(pass *Pass, n ast.Node) bool {
	f := pass.Fset.File(n.Pos())
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// CollectBlocks returns every block statement under root. Blocks nest
// by position, so "the innermost block containing pos" is well defined
// and InnermostBlock computes it.
func CollectBlocks(root ast.Node) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(root, func(n ast.Node) bool {
		if b, ok := n.(*ast.BlockStmt); ok {
			out = append(out, b)
		}
		return true
	})
	return out
}

// InnermostBlock returns the smallest collected block containing pos,
// or nil.
func InnermostBlock(blocks []*ast.BlockStmt, pos token.Pos) *ast.BlockStmt {
	var best *ast.BlockStmt
	for _, b := range blocks {
		if b.Pos() <= pos && pos <= b.End() {
			if best == nil || (b.End()-b.Pos()) < (best.End()-best.Pos()) {
				best = b
			}
		}
	}
	return best
}

// CoversLexically reports whether a statement-like node at (fromPos,
// fromEnd] covers a later point toPos: the innermost block holding the
// from-node also holds toPos, and the from-node finishes before toPos.
// It is the cheap stand-in for dominance the path-sensitive analyzers
// (spanend, bufown) use: an `end(err)` directly in an ancestor block
// of a return is on every path to it; one inside a sibling branch is
// not.
func CoversLexically(blocks []*ast.BlockStmt, from ast.Node, toPos token.Pos) bool {
	if from.End() >= toPos {
		return false
	}
	b := InnermostBlock(blocks, from.Pos())
	return b != nil && b.Pos() <= toPos && toPos <= b.End()
}

// FuncBodies returns the body of every function declaration and
// function literal in the file, so an analyzer can scope work to one
// function at a time: the innermost body containing a node is the
// function it executes in.
func FuncBodies(f *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out = append(out, n.Body)
			}
		case *ast.FuncLit:
			out = append(out, n.Body)
		}
		return true
	})
	return out
}

// SameFuncScope reports whether pos executes directly in the function
// whose body is scope — i.e. scope is the innermost function body
// containing pos (no intervening function literal).
func SameFuncScope(bodies []*ast.BlockStmt, scope *ast.BlockStmt, pos token.Pos) bool {
	if pos < scope.Pos() || pos > scope.End() {
		return false
	}
	for _, b := range bodies {
		if b == scope {
			continue
		}
		// a smaller body nested inside scope that contains pos means
		// pos lives in a closure, not in scope directly
		if b.Pos() > scope.Pos() && b.End() < scope.End() && b.Pos() <= pos && pos <= b.End() {
			return false
		}
	}
	return true
}
