// Package spanend checks that every span the tracer starts is ended
// on every path. StartSpan/ContinueSpan (and their Note variants)
// return a closer — `func(err error)` — that records the span when
// called; a path that leaves the function without calling it loses the
// span from the timeline, which is exactly the error path an operator
// most wants to see.
//
// The closer is considered handled when it is:
//
//   - deferred (`defer end(err)` or a deferred closure referencing
//     it) — covers every later path;
//   - called on every path that leaves the function after the start
//     (checked lexically: an `end(err)` in an ancestor block before
//     the return);
//   - passed to a helper whose imported fact says it calls its
//     func(error) param (EndsSpan — interprocedural via the facts
//     engine);
//   - stored, returned, or captured by a closure — ownership visibly
//     moves and the analyzer stops second-guessing.
//
// Discarding the closer with `_` is always flagged.
package spanend

import (
	"go/ast"
	"go/token"
	"go/types"

	"directload/internal/analysis"
)

// Analyzer is the spanend check.
var Analyzer = &analysis.Analyzer{
	Name: "spanend",
	Doc:  "every StartSpan/ContinueSpan closer must be called on all paths (usually deferred)",
	Run:  run,
}

// spanStarters are the tracer methods returning (ctx, closer).
var spanStarters = map[string]bool{
	"StartSpan": true, "ContinueSpan": true,
	"StartSpanNote": true, "ContinueSpanNote": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass, f) {
			continue
		}
		bodies := analysis.FuncBodies(f)
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
				return true
			}
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok || !isSpanStart(pass.TypesInfo, call) {
				return true
			}
			checkCloser(pass, bodies, as, call)
			return true
		})
	}
	return nil
}

// isSpanStart reports whether call is a metrics tracer span start: a
// method named like StartSpan on a metrics-package receiver, returning
// a func(error) second result.
func isSpanStart(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || !spanStarters[fn.Name()] || fn.Pkg() == nil {
		return false
	}
	if !analysis.PkgPathMatches(fn.Pkg().Path(), "metrics") {
		return false
	}
	sig := fn.Type().(*types.Signature)
	return sig.Results().Len() == 2 && analysis.IsSpanCloserType(sig.Results().At(1).Type())
}

// checkCloser verifies the second assignee of one span start.
func checkCloser(pass *analysis.Pass, bodies []*ast.BlockStmt, as *ast.AssignStmt, call *ast.CallExpr) {
	closerIdent, ok := as.Lhs[1].(*ast.Ident)
	if !ok {
		return
	}
	if closerIdent.Name == "_" {
		pass.Reportf(call.Pos(), "span closer discarded: the span never records; assign and defer it")
		return
	}
	info := pass.TypesInfo
	obj := info.Defs[closerIdent]
	if obj == nil {
		obj = info.Uses[closerIdent]
	}
	if obj == nil {
		return
	}
	// The function body this start executes in.
	var scope *ast.BlockStmt
	for _, b := range bodies {
		if b.Pos() <= call.Pos() && call.End() <= b.End() {
			if scope == nil || b.Pos() > scope.Pos() {
				scope = b
			}
		}
	}
	if scope == nil {
		return
	}
	blocks := analysis.CollectBlocks(scope)

	var (
		coveredAll bool       // defer / ownership moved / closure capture
		endEvents  []ast.Node // direct or fact-based end calls, position-checked per return
	)
	ast.Inspect(scope, func(n ast.Node) bool {
		if coveredAll {
			return false
		}
		switch n := n.(type) {
		case *ast.DeferStmt:
			if callsObj(info, n.Call, obj) || referencesObj(info, n.Call, obj) {
				coveredAll = true
			}
		case *ast.FuncLit:
			// a non-deferred closure referencing the closer: whoever
			// runs the closure owns the span now
			if n.Body != nil && referencesObj(info, n.Body, obj) {
				coveredAll = true
			}
			return false
		case *ast.AssignStmt:
			// stored into a field/map/global: ownership moved
			for i, rhs := range n.Rhs {
				if id, ok := ast.Unparen(rhs).(*ast.Ident); ok && info.Uses[id] == obj && i < len(n.Lhs) {
					if retainingLHS(info, n.Lhs[i]) {
						coveredAll = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if id, ok := ast.Unparen(res).(*ast.Ident); ok && info.Uses[id] == obj {
					coveredAll = true
				}
			}
		case *ast.CallExpr:
			if callsObj(info, n, obj) {
				endEvents = append(endEvents, n)
				return true
			}
			// passed to a helper that ends it (facts)
			if fn := analysis.CalleeFunc(info, n); fn != nil {
				for i, arg := range n.Args {
					id, ok := ast.Unparen(arg).(*ast.Ident)
					if !ok || info.Uses[id] != obj {
						continue
					}
					if ff := pass.Facts.Func(fn); ff.EndsSpanParam(i) {
						endEvents = append(endEvents, n)
					}
				}
			}
		}
		return true
	})
	if coveredAll {
		return
	}
	if len(endEvents) == 0 {
		pass.Reportf(call.Pos(), "span closer %s is never called: the span never records; defer it", closerIdent.Name)
		return
	}
	// Every exit after the start must be preceded by an end on its
	// path: each return directly in this scope, plus the implicit
	// return at the end of a body that can fall off its closing brace.
	// An end event directly in the start's own block also discharges
	// every exit after that block closes — the block cannot finish
	// normally without passing it (a continue/goto between start and
	// end can cheat this, which is as far as lexical checking sees).
	startBlock := analysis.InnermostBlock(blocks, call.Pos())
	for _, ret := range scopeReturns(bodies, scope, call.End()) {
		covered := false
		for _, e := range endEvents {
			if analysis.CoversLexically(blocks, e, ret) {
				covered = true
				break
			}
			if startBlock != nil && analysis.InnermostBlock(blocks, e.Pos()) == startBlock &&
				e.Pos() > call.End() && ret > startBlock.End() {
				covered = true
				break
			}
		}
		if !covered {
			pass.Reportf(ret, "path leaves function without calling span closer %s (started at line %d); defer it or call it before returning",
				closerIdent.Name, pass.Fset.Position(call.Pos()).Line)
		}
	}
}

// scopeReturns lists the exit points of scope after afterPos: return
// statements executing directly in scope, and the closing brace when
// the body can fall off its end.
func scopeReturns(bodies []*ast.BlockStmt, scope *ast.BlockStmt, afterPos token.Pos) []token.Pos {
	var out []token.Pos
	ast.Inspect(scope, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if ret.Pos() > afterPos && analysis.SameFuncScope(bodies, scope, ret.Pos()) {
			out = append(out, ret.Pos())
		}
		return true
	})
	if fallsOffEnd(scope) {
		out = append(out, scope.Rbrace)
	}
	return out
}

// fallsOffEnd reports whether control can reach the body's closing
// brace: the last statement is not a return or a terminating
// for/panic.
func fallsOffEnd(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return true
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt:
		return false
	case *ast.ForStmt:
		return last.Cond != nil // `for { ... }` never falls through
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return false
			}
		}
	}
	return true
}

// callsObj reports whether call invokes obj directly: obj(...).
func callsObj(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && info.Uses[id] == obj
}

// referencesObj reports whether any identifier under n resolves to obj.
func referencesObj(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// retainingLHS mirrors the facts engine's notion: a store that makes
// the value outlive the function.
func retainingLHS(info *types.Info, lhs ast.Expr) bool {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.Ident:
		if obj, ok := info.Uses[e].(*types.Var); ok && obj.Pkg() != nil {
			return obj.Parent() == obj.Pkg().Scope()
		}
	}
	return false
}
