package spanend_test

import (
	"testing"

	"directload/internal/analysis/analysistest"
	"directload/internal/analysis/spanend"
)

func TestSpanEnd(t *testing.T) {
	analysistest.Run(t, "testdata", spanend.Analyzer, "spans")
}

// TestSpanEndInterprocedural needs spanhelp's imported facts: Handoff
// is quiet only because Finish's summary says it calls its closer.
func TestSpanEndInterprocedural(t *testing.T) {
	analysistest.Run(t, "testdata", spanend.Analyzer, "spanuser")
}
