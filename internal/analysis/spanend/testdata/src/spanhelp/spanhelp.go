// Package spanhelp provides helpers the spans fixture hands its
// closers to. The facts engine summarizes Finish as EndsSpan=[0];
// Ignore gets no fact. The difference is what makes the
// interprocedural fixture cases fire (or not).
package spanhelp

// Finish records the span: EndsSpan=[0].
func Finish(end func(error), err error) {
	end(err)
}

// Ignore drops the closer without calling it: no fact.
func Ignore(end func(error)) {
	_ = end
}
