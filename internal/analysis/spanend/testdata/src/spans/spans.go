// Package spans exercises spanend: every way a closer can be handled
// or lost.
package spans

import (
	"context"
	"errors"

	"metrics"
)

var errBoom = errors.New("boom")

type server struct {
	tr      *metrics.Tracer
	pending func(error)
}

func work() error { return nil }

// Deferred is the idiomatic shape: defer covers every path.
func Deferred(t *metrics.Tracer, ctx context.Context) error {
	_, end := t.StartSpan(ctx, "deferred")
	err := work()
	defer end(err)
	return err
}

// DeferredClosure defers a closure that calls end: also covered.
func DeferredClosure(t *metrics.Tracer, ctx context.Context) (err error) {
	_, end := t.StartSpan(ctx, "deferred-closure")
	defer func() { end(err) }()
	return work()
}

// Linear ends the span on the single fall-through path.
func Linear(t *metrics.Tracer, ctx context.Context) {
	_, end := t.StartSpan(ctx, "linear")
	_ = work()
	end(nil)
}

// Discarded throws the closer away: the span never records.
func Discarded(t *metrics.Tracer, ctx context.Context) {
	_, _ = t.StartSpan(ctx, "discarded") // want `span closer discarded`
	_ = work()
}

// Forgotten assigns the closer and never calls it.
func Forgotten(t *metrics.Tracer, ctx context.Context) {
	_, end := t.StartSpan(ctx, "forgotten") // want `span closer end is never called`
	_ = end
	_ = work()
}

// Branchy ends the span on the failure path only; the success return
// leaks it.
func Branchy(t *metrics.Tracer, ctx context.Context, fail bool) error {
	_, end := t.StartSpan(ctx, "branchy")
	if fail {
		end(errBoom)
		return errBoom
	}
	return nil // want `path leaves function without calling span closer end`
}

// FallsOff ends the span in one branch but can fall off the closing
// brace without it.
func FallsOff(t *metrics.Tracer, ctx context.Context, fail bool) {
	_, end := t.StartSpan(ctx, "fallsoff")
	if fail {
		end(errBoom)
	}
} // want `path leaves function without calling span closer end`

// Stored parks the closer in a field: ownership visibly moved, the
// analyzer trusts whoever drains pending.
func (s *server) Stored(ctx context.Context) {
	_, end := s.tr.StartSpan(ctx, "stored")
	s.pending = end
}

// Returned hands the closer to the caller.
func Returned(t *metrics.Tracer, ctx context.Context) (context.Context, func(error)) {
	sctx, end := t.StartSpan(ctx, "returned")
	return sctx, end
}

// Captured lets a goroutine own the span's end.
func Captured(t *metrics.Tracer, ctx context.Context, done chan error) {
	_, end := t.StartSpan(ctx, "captured")
	go func() {
		end(<-done)
	}()
}

// Registry spans are checked the same way as Tracer spans.
func FromRegistry(r *metrics.Registry, ctx context.Context) {
	_, end := r.StartSpan(ctx, "registry") // want `span closer end is never called`
	_ = end
}

// ScopedSpan starts and ends the span inside one branch; the
// untraced return afterwards is not on the span's path.
func ScopedSpan(t *metrics.Tracer, ctx context.Context, traced bool) error {
	if traced {
		var end func(error)
		ctx, end = t.StartSpan(ctx, "scoped")
		err := workCtx(ctx)
		end(err)
		return err
	}
	return work()
}

func workCtx(ctx context.Context) error { return nil }

// LoopSpan opens and closes a span per iteration; the function exit
// happens with no span live.
func LoopSpan(t *metrics.Tracer, ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		_, end := t.StartSpan(ctx, "iter")
		end(work())
	}
}

// EarlyOut returns between the start and the end: that path leaks
// even though the block's own exit is covered.
func EarlyOut(t *metrics.Tracer, ctx context.Context, skip bool) error {
	_, end := t.StartSpan(ctx, "early")
	if skip {
		return nil // want `path leaves function without calling span closer end`
	}
	err := work()
	end(err)
	return err
}

// NoteVariant covers the *Note span starters.
func NoteVariant(t *metrics.Tracer, ctx context.Context) {
	_, end := t.StartSpanNote(ctx, "note", "detail")
	defer end(nil)
}
