// Package metrics is a fixture stub of directload's tracer surface:
// just enough shape for spanend to recognize span starts. The real
// package lives at directload/internal/metrics; PkgPathMatches lets
// the analyzer treat this bare path the same way.
package metrics

import "context"

// Tracer mirrors the span-start surface of the real tracer.
type Tracer struct{}

func (t *Tracer) StartSpan(ctx context.Context, op string) (context.Context, func(error)) {
	return ctx, func(error) {}
}

func (t *Tracer) ContinueSpan(ctx context.Context, op string) (context.Context, func(error)) {
	return ctx, func(error) {}
}

func (t *Tracer) StartSpanNote(ctx context.Context, op, note string) (context.Context, func(error)) {
	return ctx, func(error) {}
}

// Registry also starts spans in the real package.
type Registry struct{}

func (r *Registry) StartSpan(ctx context.Context, op string) (context.Context, func(error)) {
	return ctx, func(error) {}
}
