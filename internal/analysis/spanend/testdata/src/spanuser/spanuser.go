// Package spanuser hands its closers to spanhelp across a package
// boundary: these cases only resolve correctly through imported facts.
package spanuser

import (
	"context"

	"metrics"
	"spanhelp"
)

func work() error { return nil }

// Handoff ends the span through spanhelp.Finish — quiet only because
// Finish's imported fact says EndsSpan=[0].
func Handoff(t *metrics.Tracer, ctx context.Context) error {
	_, end := t.StartSpan(ctx, "handoff")
	err := work()
	spanhelp.Finish(end, err)
	return err
}

// BadHandoff passes the closer to a helper that drops it; no fact, so
// the span is lost.
func BadHandoff(t *metrics.Tracer, ctx context.Context) {
	_, end := t.StartSpan(ctx, "bad-handoff") // want `span closer end is never called`
	spanhelp.Ignore(end)
}

// PartialHandoff finishes through the helper on one path only.
func PartialHandoff(t *metrics.Tracer, ctx context.Context, fail bool) error {
	_, end := t.StartSpan(ctx, "partial")
	if fail {
		spanhelp.Finish(end, nil)
		return nil
	}
	return work() // want `path leaves function without calling span closer end`
}
