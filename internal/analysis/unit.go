package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// Config mirrors the JSON the go command writes to <objdir>/vet.cfg
// when invoking a -vettool (cmd/go/internal/work's vetConfig). Only
// the fields this driver consumes are declared.
type Config struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoFiles    []string
	NonGoFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// RunUnit executes the vet-tool protocol for one package: read the
// config file the go command wrote, type-check the package against the
// export data the build produced, import the dependencies' facts from
// their vetx files, run the analyzers, export this package's facts to
// cfg.VetxOutput, and print findings to stderr in the file:line:col
// form `go vet` expects. The returned exit code is 0 (clean) or 2
// (findings), mirroring the x/tools unitchecker.
//
// The go command runs the tool over every dependency first (VetxOnly
// mode), which is where the interprocedural facts come from: a
// dependency's run type-checks it from source, summarizes every
// function (facts.go), and persists the summaries for dependents to
// import through cfg.PackageVetx. Only directload's own packages are
// summarized — the invariants the suite encodes are about this repo's
// helpers, and skipping the standard library keeps a cold `make lint`
// fast. Fact computation is best-effort: a dependency that fails to
// load exports an empty fact set rather than failing the build.
func RunUnit(cfgFile string, analyzers []*Analyzer) int {
	cfg, err := readConfig(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "directload-vet: %v\n", err)
		return 1
	}
	if cfg.VetxOnly {
		facts := NewFactSet()
		if isModulePkg(cfg.ImportPath) {
			if pkg, err := loadUnit(cfg); err == nil {
				facts = ComputeFacts(pkg, readImportedFacts(cfg))
			}
		}
		if err := writeVetx(cfg, facts); err != nil {
			fmt.Fprintf(os.Stderr, "directload-vet: %v\n", err)
			return 1
		}
		return 0
	}
	pkg, err := loadUnit(cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "directload-vet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	diags, own, err := RunWithFacts(pkg, readImportedFacts(cfg), analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "directload-vet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if err := writeVetx(cfg, own); err != nil {
		fmt.Fprintf(os.Stderr, "directload-vet: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// isModulePkg reports whether importPath belongs to this module —
// the only packages worth summarizing.
func isModulePkg(importPath string) bool {
	return importPath == "directload" || strings.HasPrefix(importPath, "directload/")
}

// readImportedFacts merges the fact files of every dependency the go
// command lists in cfg.PackageVetx. Files that are missing, stale
// (version mismatch) or not fact files at all contribute nothing.
func readImportedFacts(cfg *Config) *FactSet {
	merged := NewFactSet()
	for _, file := range cfg.PackageVetx {
		data, err := os.ReadFile(file)
		if err != nil {
			continue
		}
		fs, err := DecodeFacts(data)
		if err != nil {
			continue
		}
		merged.Merge(fs)
	}
	return merged
}

func readConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", path, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("%s: no Go files", path)
	}
	return cfg, nil
}

func writeVetx(cfg *Config, facts *FactSet) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	return os.WriteFile(cfg.VetxOutput, facts.Encode(), 0o666)
}

// loadUnit parses and type-checks the package described by cfg, using
// the export data files of already-built dependencies.
func loadUnit(cfg *Config) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	info := NewInfo()
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", "amd64")}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
