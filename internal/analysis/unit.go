package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
)

// Config mirrors the JSON the go command writes to <objdir>/vet.cfg
// when invoking a -vettool (cmd/go/internal/work's vetConfig). Only
// the fields this driver consumes are declared.
type Config struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoFiles    []string
	NonGoFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// RunUnit executes the vet-tool protocol for one package: read the
// config file the go command wrote, type-check the package against the
// export data the build produced, run the analyzers, and print
// findings to stderr in the file:line:col form `go vet` expects.
// The returned exit code is 0 (clean) or 2 (findings), mirroring the
// x/tools unitchecker.
func RunUnit(cfgFile string, analyzers []*Analyzer) int {
	cfg, err := readConfig(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "directload-vet: %v\n", err)
		return 1
	}
	// The go command runs the tool over every dependency first so
	// fact-based analyzers can export data ("vetx"). None of these
	// analyzers use facts, so dependency runs only need to produce
	// the (empty) output file the go command caches.
	if err := writeVetx(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "directload-vet: %v\n", err)
		return 1
	}
	if cfg.VetxOnly {
		return 0
	}
	pkg, err := loadUnit(cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "directload-vet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	diags, err := Run(pkg, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "directload-vet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func readConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", path, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("%s: no Go files", path)
	}
	return cfg, nil
}

func writeVetx(cfg *Config) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	return os.WriteFile(cfg.VetxOutput, []byte("directload-vet: no facts\n"), 0o666)
}

// loadUnit parses and type-checks the package described by cfg, using
// the export data files of already-built dependencies.
func loadUnit(cfg *Config) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	info := NewInfo()
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", "amd64")}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
