// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis vocabulary, just large enough to
// host directload's repo-specific analyzers (cmd/directload-vet).
//
// The real go/analysis module is not vendored here, so the framework
// re-creates the three pieces the analyzers need:
//
//   - Analyzer / Pass / Diagnostic, the unit-of-work API;
//   - a driver speaking the `go vet -vettool` protocol (see unit.go),
//     so `go vet -vettool=$(directload-vet)` runs the suite with the
//     go command's package loading, export data and caching;
//   - a source-mode loader (load.go) used by the analyzers' fixture
//     tests (internal/analysis/analysistest).
//
// Suppressions: a finding may be silenced with a comment in the style
// of staticcheck's lint directives, either on the flagged line or the
// line directly above it:
//
//	//lint:ignore <analyzer>[,<analyzer>...] reason
//
// The reason is mandatory; a bare directive does not suppress. The
// analyzer name "all" matches every analyzer in the suite.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. It must be a valid flag name.
	Name string
	// Doc is the one-line summary shown by directload-vet -list.
	Doc string
	// Run applies the check to one package, reporting findings
	// through pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one package's syntax and type information to an
// analyzer, mirroring go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts is the merged interprocedural view: summaries for every
	// function of this package and of its (transitive) dependencies
	// that the engine analyzed. See facts.go.
	Facts *FactSet

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, msg string) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  msg,
	})
}

// Reportf records a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// Package bundles a loaded, type-checked package ready for analysis.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Run applies each analyzer to pkg and returns the surviving findings
// (suppressed ones removed) sorted by position. Facts are computed for
// pkg itself; cross-package summaries are absent (see RunWithFacts).
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunWithFacts(pkg, nil, analyzers)
	return diags, err
}

// RunWithFacts applies each analyzer to pkg with the dependencies'
// imported facts in scope. It returns the surviving findings and the
// package's own computed facts, for the caller to export to
// dependents.
func RunWithFacts(pkg *Package, imported *FactSet, analyzers []*Analyzer) ([]Diagnostic, *FactSet, error) {
	own := ComputeFacts(pkg, imported)
	merged := MergeFacts(imported, own)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
			Facts:     merged,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}
	diags = filterIgnored(pkg, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	// An analyzer revisiting shared syntax (e.g. an if statement inside
	// nested loops) may report the same finding twice; keep one.
	deduped := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		deduped = append(deduped, d)
	}
	return deduped, own, nil
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file      string
	line      int // line the directive is written on
	analyzers []string
}

// matches reports whether the directive silences analyzer findings on
// the given line (the directive's own line or the one below it).
func (d ignoreDirective) matches(analyzer string, file string, line int) bool {
	if d.file != file || (line != d.line && line != d.line+1) {
		return false
	}
	for _, a := range d.analyzers {
		if a == analyzer || a == "all" {
			return true
		}
	}
	return false
}

// parseIgnoreDirectives extracts //lint:ignore directives from a file.
func parseIgnoreDirectives(fset *token.FileSet, f *ast.File) []ignoreDirective {
	var out []ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "lint:ignore ") {
				continue
			}
			fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore "))
			if len(fields) < 2 {
				continue // no reason given: directive is inert
			}
			pos := fset.Position(c.Pos())
			out = append(out, ignoreDirective{
				file:      pos.Filename,
				line:      pos.Line,
				analyzers: strings.Split(fields[0], ","),
			})
		}
	}
	return out
}

// filterIgnored drops findings silenced by //lint:ignore directives.
func filterIgnored(pkg *Package, diags []Diagnostic) []Diagnostic {
	var directives []ignoreDirective
	for _, f := range pkg.Files {
		directives = append(directives, parseIgnoreDirectives(pkg.Fset, f)...)
	}
	if len(directives) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, dir := range directives {
			if dir.matches(d.Analyzer, d.Pos.Filename, d.Pos.Line) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}
