// Package bufsink is the imported side of bufown's interprocedural
// cases: the engine summarizes Stash as retaining its parameter and
// Recycle as Putting it; bufuser only sees those facts.
package bufsink

import "sync"

// Sink keeps the last buffer it is shown.
type Sink struct{ last []byte }

// Stash retains p: Retains=[0].
func (s *Sink) Stash(p []byte) { s.last = p }

// Recycle returns p to the pool: Puts=[1].
func Recycle(pool *sync.Pool, p []byte) { pool.Put(p) }

// Read only measures the buffer: empty summary.
func Read(p []byte) int { return len(p) }
