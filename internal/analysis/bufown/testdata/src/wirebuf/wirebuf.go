// Package wirebuf exercises bufown within one package: Get/Put
// pairing, use-after-Put, and every escape route.
package wirebuf

import "sync"

var pool = sync.Pool{New: func() any { return make([]byte, 0, 4096) }}

var index = map[string][]byte{}

type frame struct{ payload []byte }

type cache struct{ last []byte }

func process(p []byte) {}

// recycle puts its buffer back: the engine summarizes Puts=[0], so
// callers that hand off through it are paired up.
func recycle(p []byte) { pool.Put(p) }

// Roundtrip is the idiomatic loan: deferred Put, free use in between.
func Roundtrip() {
	buf := pool.Get().([]byte)
	defer pool.Put(buf)
	buf = append(buf[:0], 'x')
	process(buf)
}

// Delegated pairs the Get with recycle's Puts fact.
func Delegated() {
	buf := pool.Get().([]byte)
	process(buf)
	recycle(buf)
}

// Trim copies out of the loan before returning: nothing escapes.
func Trim() []byte {
	buf := pool.Get().([]byte)
	defer pool.Put(buf)
	out := append([]byte(nil), buf...)
	return out
}

// Async hands the buffer to a closure; the closure owns the loan now.
func Async(run func(func())) {
	buf := pool.Get().([]byte)
	run(func() {
		process(buf)
		pool.Put(buf)
	})
}

// UseAfterPut touches the buffer after giving it back.
func UseAfterPut() {
	buf := pool.Get().([]byte)
	buf = append(buf[:0], 'x')
	pool.Put(buf)
	process(buf) // want `pooled buffer buf used after Put`
}

// Remember parks the loaned buffer in a field.
func (c *cache) Remember() {
	buf := pool.Get().([]byte)
	defer pool.Put(buf)
	c.last = buf // want `pooled buffer buf stored beyond the function`
}

// Stash leaks the loan into a global map.
func Stash(k string) {
	buf := pool.Get().([]byte)
	defer pool.Put(buf)
	index[k] = buf // want `pooled buffer buf stored beyond the function`
}

// Leak returns the loaned buffer itself.
func Leak() []byte {
	buf := pool.Get().([]byte)
	return buf // want `pooled buffer buf returned to caller`
}

// Ship sends the loan across a channel.
func Ship(ch chan []byte) {
	buf := pool.Get().([]byte)
	defer pool.Put(buf)
	ch <- buf // want `pooled buffer buf sent on a channel`
}

// Pack wraps the loan in a struct literal.
func Pack() frame {
	buf := pool.Get().([]byte)
	defer pool.Put(buf)
	return frame{payload: buf} // want `pooled buffer buf packed into a composite literal`
}

// Forgot never gives the buffer back.
func Forgot() {
	buf := pool.Get().([]byte) // want `pooled buffer buf is never returned to the pool`
	process(buf)
	_ = len(buf)
}
