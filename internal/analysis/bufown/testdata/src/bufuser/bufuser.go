// Package bufuser hands pooled buffers to bufsink across a package
// boundary. Both findings and non-findings here depend on imported
// facts: without them Stash looks harmless and Recycle looks like a
// missing Put.
package bufuser

import (
	"sync"

	"bufsink"
)

var pool = sync.Pool{New: func() any { return make([]byte, 0, 64) }}

// BadForward leaks the loan into the sink: only bufsink's imported
// Retains fact reveals it.
func BadForward(s *bufsink.Sink) {
	buf := pool.Get().([]byte)
	defer pool.Put(buf)
	s.Stash(buf) // want `pooled buffer buf retained by Stash`
}

// GoodForward pairs its Get with bufsink.Recycle's Puts fact.
func GoodForward() {
	buf := pool.Get().([]byte)
	bufsink.Read(buf)
	bufsink.Recycle(&pool, buf)
}
