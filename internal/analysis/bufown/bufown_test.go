package bufown_test

import (
	"testing"

	"directload/internal/analysis/analysistest"
	"directload/internal/analysis/bufown"
)

func TestBufOwn(t *testing.T) {
	analysistest.Run(t, "testdata", bufown.Analyzer, "wirebuf")
}

// TestBufOwnInterprocedural needs bufsink's imported facts: BadForward
// fires only because Stash's summary says it retains its parameter,
// and GoodForward is quiet only because Recycle's says it Puts.
func TestBufOwnInterprocedural(t *testing.T) {
	analysistest.Run(t, "testdata", bufown.Analyzer, "bufuser")
}
