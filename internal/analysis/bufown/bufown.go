// Package bufown polices the lifecycle of sync.Pool buffers — the
// gatekeeper for the planned pooled-wire-buffer refactor. A pooled
// buffer is on loan: it must go back (Put), it must not be touched
// after it goes back, and it must not outlive the loan by escaping
// into a struct field, map, global, return value or channel.
//
// Interprocedurally (via the facts engine), handing the buffer to a
// helper whose summary says it Puts its parameter counts as the Put,
// and handing it to one whose summary says it retains the parameter
// is an escape — even across package boundaries.
package bufown

import (
	"go/ast"
	"go/token"
	"go/types"

	"directload/internal/analysis"
)

// Analyzer is the bufown check.
var Analyzer = &analysis.Analyzer{
	Name: "bufown",
	Doc:  "sync.Pool buffers must be Put exactly once, never used after Put, and never escape the function",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass, f) {
			continue
		}
		bodies := analysis.FuncBodies(f)
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 1 {
				return true
			}
			call := unwrapGet(as.Rhs[0])
			if call == nil || !analysis.IsPoolGet(pass.TypesInfo, call) {
				return true
			}
			id, ok := as.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				return true
			}
			checkBuffer(pass, bodies, call, id)
			return true
		})
	}
	return nil
}

// unwrapGet digs the pool.Get() call out of `pool.Get().([]byte)`.
func unwrapGet(e ast.Expr) *ast.CallExpr {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, _ := e.(*ast.CallExpr)
	return call
}

// putEvent is one way the buffer went back to the pool.
type putEvent struct {
	node     ast.Node
	deferred bool // a deferred Put runs at function exit, opening no use-after window
}

func checkBuffer(pass *analysis.Pass, bodies []*ast.BlockStmt, get *ast.CallExpr, id *ast.Ident) {
	info := pass.TypesInfo
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	if obj == nil {
		return
	}
	scope := analysis.InnermostBlock(bodies, get.Pos())
	if scope == nil {
		return
	}
	blocks := analysis.CollectBlocks(scope)
	aliases := collectAliases(info, scope, obj)

	var (
		puts    []putEvent
		handoff bool // passed to a call or closure we can't see through
		escaped bool
	)
	deferredCalls := map[*ast.CallExpr]bool{}

	ast.Inspect(scope, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferredCalls[n.Call] = true
		case *ast.FuncLit:
			// the closure may Put or keep the buffer; either way the
			// intra-function story ends here
			if refsAny(info, n.Body, aliases) {
				handoff = true
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if !isAliasExpr(info, rhs, aliases) || i >= len(n.Lhs) {
					continue
				}
				if retainingLHS(info, n.Lhs[i]) {
					pass.Reportf(n.Pos(), "pooled buffer %s stored beyond the function: the pool can hand it to another goroutine while it is still referenced; copy it instead", id.Name)
					escaped = true
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if isAliasExpr(info, v, aliases) {
					pass.Reportf(v.Pos(), "pooled buffer %s packed into a composite literal: it outlives the loan; copy it instead", id.Name)
					escaped = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if isAliasExpr(info, res, aliases) {
					pass.Reportf(n.Pos(), "pooled buffer %s returned to caller: the pool can reclaim it out from under them; copy it or Put here", id.Name)
					escaped = true
				}
			}
		case *ast.SendStmt:
			if isAliasExpr(info, n.Value, aliases) {
				pass.Reportf(n.Pos(), "pooled buffer %s sent on a channel: the receiver races the pool; copy it instead", id.Name)
				escaped = true
			}
		case *ast.CallExpr:
			if analysis.IsPoolPutCall(info, n) {
				for _, arg := range n.Args {
					if isAliasExpr(info, arg, aliases) {
						puts = append(puts, putEvent{n, deferredCalls[n]})
					}
				}
				return true
			}
			fn := analysis.CalleeFunc(info, n)
			for i, arg := range n.Args {
				if !isAliasExpr(info, arg, aliases) {
					continue
				}
				if fn == nil {
					// len/cap/append read or copy, conversions copy
					// (string(buf)); ownership stays here. A call
					// through a func value is opaque: assume handled.
					if !isBuiltinOrConversion(info, n) {
						handoff = true
					}
					continue
				}
				ff := pass.Facts.Func(fn)
				switch {
				case ff.RetainsParam(i):
					pass.Reportf(arg.Pos(), "pooled buffer %s retained by %s (retains its arg %d): it outlives the loan; copy before passing", id.Name, fn.Name(), i)
					escaped = true
				case ff.PutsParam(i):
					puts = append(puts, putEvent{n, deferredCalls[n]})
				case !pass.Facts.Known(fn):
					handoff = true // no summary: assume the callee handles it
				}
			}
		}
		return true
	})

	// Use-after-Put: any reference to the buffer a non-deferred Put
	// lexically covers.
	for _, put := range puts {
		if put.deferred {
			continue
		}
		for _, use := range aliasUses(info, scope, aliases) {
			if within(put.node, use.Pos()) {
				continue
			}
			if analysis.CoversLexically(blocks, put.node, use.Pos()) {
				pass.Reportf(use.Pos(), "pooled buffer %s used after Put: the pool may already have handed it to another goroutine", id.Name)
			}
		}
	}

	if len(puts) == 0 && !escaped && !handoff {
		pass.Reportf(get.Pos(), "pooled buffer %s is never returned to the pool: Put it (usually deferred) before every exit", id.Name)
	}
}

// collectAliases grows the set of variables holding the same backing
// buffer: direct copies and reslices of a tracked name.
func collectAliases(info *types.Info, scope ast.Node, root types.Object) map[types.Object]bool {
	aliases := map[types.Object]bool{root: true}
	for iter := 0; iter < 10; iter++ {
		changed := false
		ast.Inspect(scope, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				if !isAliasExpr(info, rhs, aliases) {
					continue
				}
				lhs, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[lhs]
				if obj == nil {
					obj = info.Uses[lhs]
				}
				if obj != nil && !aliases[obj] {
					aliases[obj] = true
					changed = true
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	return aliases
}

// isAliasExpr reports whether e is (a reslice or reassertion of) a
// tracked alias.
func isAliasExpr(info *types.Info, e ast.Expr, aliases map[types.Object]bool) bool {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.SliceExpr:
			e = t.X
		case *ast.TypeAssertExpr:
			e = t.X
		case *ast.Ident:
			obj := info.Uses[t]
			if obj == nil {
				obj = info.Defs[t]
			}
			return obj != nil && aliases[obj]
		default:
			return false
		}
	}
}

// aliasUses lists every identifier reference to a tracked alias.
func aliasUses(info *types.Info, scope ast.Node, aliases map[types.Object]bool) []*ast.Ident {
	var out []*ast.Ident
	ast.Inspect(scope, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && aliases[obj] {
				out = append(out, id)
			}
		}
		return true
	})
	return out
}

// refsAny reports whether n references any tracked alias.
func refsAny(info *types.Info, n ast.Node, aliases map[types.Object]bool) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && aliases[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// isBuiltinOrConversion reports whether call invokes a builtin
// (append, len, copy, ...) or is a type conversion.
func isBuiltinOrConversion(info *types.Info, call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
	}
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return true
	}
	return false
}

// within reports whether pos falls inside node's source range.
func within(n ast.Node, pos token.Pos) bool {
	return n.Pos() <= pos && pos < n.End()
}

// retainingLHS: a store target that outlives the function — field,
// map/slice element, pointer target, or package-level variable.
func retainingLHS(info *types.Info, lhs ast.Expr) bool {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.Ident:
		if obj, ok := info.Uses[e].(*types.Var); ok && obj.Pkg() != nil {
			return obj.Parent() == obj.Pkg().Scope()
		}
	}
	return false
}
