package goroexit_test

import (
	"testing"

	"directload/internal/analysis/analysistest"
	"directload/internal/analysis/goroexit"
)

func TestGoroExit(t *testing.T) {
	analysistest.Run(t, "testdata", goroexit.Analyzer, "workers")
}

// TestGoroExitInterprocedural needs looper's imported facts: BadSpawn
// fires only because Forever's summary says LoopsForever.
func TestGoroExitInterprocedural(t *testing.T) {
	analysistest.Run(t, "testdata", goroexit.Analyzer, "looperuser")
}
