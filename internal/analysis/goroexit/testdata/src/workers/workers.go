// Package workers exercises goroexit within one package: inline
// goroutine bodies and `go method()` spawns of summarized loops.
package workers

type W struct {
	stop chan struct{}
	work chan int
}

func step() {}

// Start's loop watches the stop channel: terminates.
func (w *W) Start() {
	go func() {
		for {
			select {
			case <-w.stop:
				return
			case j := <-w.work:
				_ = j
			}
		}
	}()
}

// Drain ranges over a closable channel: terminates when it closes.
func (w *W) Drain() {
	go func() {
		for j := range w.work {
			_ = j
		}
	}()
}

// Spin's loop has no exit at all.
func (w *W) Spin() {
	go func() {
		for { // want `goroutine loops with no termination path`
			step()
		}
	}()
}

// loopForever is summarized LoopsForever; spawning it is Spin with a
// function call in between.
func (w *W) loopForever() {
	for {
		step()
	}
}

// SpawnLoop launches the summarized forever-loop.
func (w *W) SpawnLoop() {
	go w.loopForever() // want `goroutine runs loopForever, which loops with no termination path`
}

// pump watches stop: its summary carries no LoopsForever.
func (w *W) pump() {
	for {
		select {
		case <-w.stop:
			return
		case <-w.work:
		}
	}
}

// SpawnPump is the quiet counterpart of SpawnLoop.
func (w *W) SpawnPump() {
	go w.pump()
}

// Background is process-lifetime by design; the directive (with its
// mandatory reason) silences the finding.
func Background() {
	go func() {
		//lint:ignore goroexit process-lifetime flusher, exits with the process
		for {
			step()
		}
	}()
}
