// Package looperuser spawns looper's functions across the package
// boundary; only imported facts distinguish the two.
package looperuser

import (
	"context"

	"looper"
)

// BadSpawn launches the imported forever-loop.
func BadSpawn() {
	go looper.Forever() // want `goroutine runs Forever, which loops with no termination path`
}

// GoodSpawn launches the context-bounded loop.
func GoodSpawn(ctx context.Context) {
	go looper.Until(ctx)
}

// WrappedSpawn hits the same fact through an inline body.
func WrappedSpawn() {
	go func() {
		looper.Forever() // want `goroutine runs Forever, which loops with no termination path`
	}()
}
