// Package looper is the imported side of goroexit's interprocedural
// case: Forever's LoopsForever summary travels to looperuser as a
// fact.
package looper

import "context"

func tick() {}

// Forever loops with no exit: LoopsForever.
func Forever() {
	for {
		tick()
	}
}

// Until watches its context: terminates.
func Until(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
			tick()
		}
	}
}
