// Package goroexit requires every `go` statement to have a visible
// termination path. A goroutine whose loop has no exit — no return,
// no break, no receive from a done-ish channel — outlives the
// component that spawned it; enough of those and a "graceful"
// shutdown is neither, and every test that starts the component leaks
// a runtime stack.
//
// The check is interprocedural via the facts engine: `go s.loop()`
// where loop's summary says LoopsForever is the same bug as an inline
// `go func() { for { ... } }()`.
//
// Goroutines that are genuinely process-lifetime carry a
// `//lint:ignore goroexit <reason>` directive.
package goroexit

import (
	"go/ast"

	"directload/internal/analysis"
)

// Analyzer is the goroexit check.
var Analyzer = &analysis.Analyzer{
	Name: "goroexit",
	Doc:  "every go statement needs a visible termination path (done channel, context, or bounded work)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGo(pass, g)
			return true
		})
	}
	return nil
}

func checkGo(pass *analysis.Pass, g *ast.GoStmt) {
	info := pass.TypesInfo

	// go func() { ... }(): analyze the body directly.
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		for _, loop := range analysis.InfiniteLoops(info, lit.Body) {
			pass.Reportf(loop.Pos(), "goroutine loops with no termination path: add a done/stop channel case or bound the loop")
		}
		// The body may also just call a forever-looping function.
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit && n != ast.Node(lit) {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			reportForeverCallee(pass, call)
			return true
		})
		return
	}

	// go name(...) / go obj.method(...): consult the callee's summary.
	reportForeverCallee(pass, g.Call)
}

// reportForeverCallee flags a call whose callee's fact says it loops
// forever.
func reportForeverCallee(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	if ff := pass.Facts.Func(fn); ff != nil && ff.LoopsForever {
		pass.Reportf(call.Pos(), "goroutine runs %s, which loops with no termination path: add a done/stop channel case or bound the loop", fn.Name())
	}
}
