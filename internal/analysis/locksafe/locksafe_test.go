package locksafe_test

import (
	"testing"

	"directload/internal/analysis/analysistest"
	"directload/internal/analysis/locksafe"
)

func TestLockSafe(t *testing.T) {
	analysistest.Run(t, "testdata", locksafe.Analyzer, "server")
}
