// Package locksafe guards the network path's locking discipline in
// internal/server, internal/fleet and internal/cluster:
//
//  1. No blocking operation — channel send/receive, select without a
//     default, range over a channel, time.Sleep, WaitGroup.Wait,
//     Cond.Wait, or I/O on net/bufio values — may run while a
//     sync.Mutex or sync.RWMutex is held. Blocking under a lock turns
//     one slow peer into a stalled server.
//  2. Every path out of a function must release what it locked: an
//     early return (or falling off the end) with a mutex still held
//     and no deferred unlock is flagged.
//
// The analysis is intraprocedural and tracks mutexes by expression
// (`s.mu`, `c.conn.mu`). Functions whose name ends in "Locked" follow
// the repo convention of running under a caller-held lock and are
// checked like any other body: they acquire nothing themselves, so
// they cannot trip rule 2.
package locksafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"directload/internal/analysis"
)

// Analyzer is the locksafe check.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc:  "no blocking calls under a mutex; no lock/unlock imbalance on early returns",
	Run:  run,
}

// packages the check applies to (plus same-named fixture packages).
var scopePkgs = []string{"server", "fleet", "cluster"}

func run(pass *analysis.Pass) error {
	inScope := false
	for _, p := range scopePkgs {
		if analysis.PkgPathMatches(pass.Pkg.Path(), p) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFunc(pass, n.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, n.Body)
				return false // checkFunc does not recurse into nested lits; Inspect will reach them
			}
			return true
		})
	}
	return nil
}

// lockState tracks mutexes held at a program point, keyed by the
// mutex expression. deferred marks locks with a registered deferred
// unlock (balanced on every exit, but still *held* for rule 1).
type lockState struct {
	held map[string]bool // key -> deferred?
}

func newState() *lockState { return &lockState{held: make(map[string]bool)} }

func (s *lockState) clone() *lockState {
	c := newState()
	for k, v := range s.held {
		c.held[k] = v
	}
	return c
}

// merge keeps only locks held on both paths (conservative: fewer
// false positives downstream of diverging branches).
func (s *lockState) merge(o *lockState) {
	for k, v := range s.held {
		ov, ok := o.held[k]
		if !ok {
			delete(s.held, k)
		} else if ov {
			s.held[k] = v || ov
		}
	}
}

// undeferred returns the keys of locks held without a deferred unlock.
func (s *lockState) undeferred() []string {
	var out []string
	for k, deferred := range s.held {
		if !deferred {
			out = append(out, k)
		}
	}
	return out
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	st := walkStmts(pass, body.List, newState())
	if st != nil { // end of body is reachable
		for _, k := range st.undeferred() {
			pass.Reportf(body.Rbrace, "function can return with %s still locked (no deferred unlock)", k)
		}
	}
}

// walkStmts processes a statement list, threading the lock state.
// It returns nil when the list ends in a terminating statement.
func walkStmts(pass *analysis.Pass, list []ast.Stmt, st *lockState) *lockState {
	for _, stmt := range list {
		if st = walkStmt(pass, stmt, st); st == nil {
			return nil
		}
	}
	return st
}

func walkStmt(pass *analysis.Pass, stmt ast.Stmt, st *lockState) *lockState {
	// Rule 1: blocking operations in this statement's expressions
	// (not descending into nested function literals, which run on
	// their own goroutine or at defer time).
	if len(st.held) > 0 {
		reportBlocking(pass, stmt, st)
	}

	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			applyLockCall(pass, call, st, false)
		}
	case *ast.DeferStmt:
		applyLockCall(pass, s.Call, st, true)
	case *ast.ReturnStmt:
		for _, k := range st.undeferred() {
			pass.Reportf(s.Pos(), "return with %s still locked (no deferred unlock on this path)", k)
		}
		return nil
	case *ast.BranchStmt:
		// break/continue/goto leave the surrounding construct; stop
		// tracking this path (loops are analyzed with cloned state).
		if s.Tok == token.BREAK || s.Tok == token.CONTINUE || s.Tok == token.GOTO {
			return nil
		}
	case *ast.BlockStmt:
		return walkStmts(pass, s.List, st)
	case *ast.LabeledStmt:
		return walkStmt(pass, s.Stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			st = walkStmt(pass, s.Init, st)
		}
		thenSt := walkStmts(pass, s.Body.List, st.clone())
		var elseSt *lockState
		if s.Else != nil {
			elseSt = walkStmt(pass, s.Else, st.clone())
		} else {
			elseSt = st.clone()
		}
		switch {
		case thenSt == nil && elseSt == nil:
			return nil
		case thenSt == nil:
			return elseSt
		case elseSt == nil:
			return thenSt
		default:
			thenSt.merge(elseSt)
			return thenSt
		}
	case *ast.ForStmt:
		if s.Init != nil {
			st = walkStmt(pass, s.Init, st)
		}
		walkStmts(pass, s.Body.List, st.clone())
		return st
	case *ast.RangeStmt:
		walkStmts(pass, s.Body.List, st.clone())
		return st
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		for _, clause := range clauseBodies(stmt) {
			walkStmts(pass, clause, st.clone())
		}
		return st
	case *ast.GoStmt:
		// The goroutine body runs concurrently with its own state;
		// run() reaches nested literals independently.
	case *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.EmptyStmt:
	}
	return st
}

func clauseBodies(stmt ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	var list []ast.Stmt
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		list = s.Body.List
	case *ast.TypeSwitchStmt:
		list = s.Body.List
	case *ast.SelectStmt:
		list = s.Body.List
	}
	for _, c := range list {
		switch c := c.(type) {
		case *ast.CaseClause:
			out = append(out, c.Body)
		case *ast.CommClause:
			out = append(out, c.Body)
		}
	}
	return out
}

// applyLockCall updates the state for Lock/Unlock-family calls on
// sync.Mutex / sync.RWMutex expressions.
func applyLockCall(pass *analysis.Pass, call *ast.CallExpr, st *lockState, deferred bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	recv := sel.X
	if !isMutexType(pass, recv) {
		return
	}
	key := analysis.ExprString(recv)
	switch sel.Sel.Name {
	case "Lock", "RLock":
		if !deferred {
			st.held[key] = false
		}
	case "Unlock", "RUnlock":
		if deferred {
			if _, ok := st.held[key]; ok {
				st.held[key] = true
			}
		} else {
			delete(st.held, key)
		}
	}
}

func isMutexType(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	return analysis.IsNamed(tv.Type, "sync", "Mutex") || analysis.IsNamed(tv.Type, "sync", "RWMutex")
}

// reportBlocking flags blocking operations in stmt's own expressions
// (skipping nested statements, which walkStmt visits itself, and
// nested function literals).
func reportBlocking(pass *analysis.Pass, stmt ast.Stmt, st *lockState) {
	var exprs []ast.Expr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		exprs = []ast.Expr{s.X}
	case *ast.SendStmt:
		pass.Reportf(s.Arrow, "channel send while holding %s", heldList(st))
		exprs = []ast.Expr{s.Chan, s.Value}
	case *ast.AssignStmt:
		exprs = append(append([]ast.Expr{}, s.Lhs...), s.Rhs...)
	case *ast.ReturnStmt:
		exprs = s.Results
	case *ast.IfStmt:
		exprs = []ast.Expr{s.Cond}
	case *ast.ForStmt:
		if s.Cond != nil {
			exprs = []ast.Expr{s.Cond}
		}
	case *ast.SwitchStmt:
		if s.Tag != nil {
			exprs = []ast.Expr{s.Tag}
		}
	case *ast.SelectStmt:
		if !selectHasDefault(s) {
			pass.Reportf(s.Pos(), "blocking select (no default) while holding %s", heldList(st))
		}
		return
	case *ast.RangeStmt:
		if tv, ok := pass.TypesInfo.Types[s.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				pass.Reportf(s.Pos(), "range over channel while holding %s", heldList(st))
			}
		}
		exprs = []ast.Expr{s.X}
	case *ast.GoStmt:
		exprs = callArgs(s.Call)
	case *ast.DeferStmt:
		exprs = callArgs(s.Call)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					exprs = append(exprs, vs.Values...)
				}
			}
		}
	}
	for _, e := range exprs {
		inspectShallow(e, func(n ast.Node) {
			switch n := n.(type) {
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "channel receive while holding %s", heldList(st))
				}
			case *ast.CallExpr:
				if name := blockingCallName(pass, n); name != "" {
					pass.Reportf(n.Pos(), "%s while holding %s", name, heldList(st))
				}
			}
		})
	}
}

// callArgs returns a call's argument expressions (the go/defer call
// itself runs later; its arguments are evaluated now).
func callArgs(call *ast.CallExpr) []ast.Expr { return call.Args }

// heldList renders the held mutexes for a diagnostic message.
func heldList(st *lockState) string {
	keys := make([]string, 0, len(st.held))
	for k := range st.held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

// inspectShallow visits e without descending into function literals.
func inspectShallow(e ast.Expr, f func(ast.Node)) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			f(n)
		}
		return true
	})
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// blockingCallName classifies calls that can block indefinitely,
// returning a description or "".
func blockingCallName(pass *analysis.Pass, call *ast.CallExpr) string {
	if analysis.IsPkgCall(pass.TypesInfo, call, "time", "Sleep") {
		return "time.Sleep"
	}
	f := analysis.CalleeFunc(pass.TypesInfo, call)
	if f == nil || f.Pkg() == nil {
		return ""
	}
	sig := f.Type().(*types.Signature)
	if sig.Recv() == nil {
		return ""
	}
	recv := analysis.Deref(sig.Recv().Type())
	named, ok := recv.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	switch obj.Pkg().Path() {
	case "sync":
		if f.Name() == "Wait" && (obj.Name() == "WaitGroup" || obj.Name() == "Cond") {
			return "sync." + obj.Name() + ".Wait"
		}
	case "net":
		switch f.Name() {
		case "Read", "Write", "Accept", "ReadFrom", "WriteTo":
			return "net." + obj.Name() + "." + f.Name() + " (network I/O)"
		}
	case "bufio":
		switch f.Name() {
		case "Read", "ReadByte", "ReadBytes", "ReadString", "ReadRune", "Peek", "Write", "WriteByte", "WriteString", "Flush", "ReadSlice", "ReadLine":
			return "bufio." + obj.Name() + "." + f.Name() + " (buffered I/O)"
		}
	}
	return ""
}
