// Package server is a fixture for the network path's locking rules: no
// blocking operations under a mutex, and every exit path must release
// what it locked.
package server

import (
	"bufio"
	"sync"
	"time"
)

type S struct {
	mu sync.Mutex
	wg sync.WaitGroup
	bw *bufio.Writer
	ch chan int
	n  int
}

// Good: deferred unlock, nothing blocking under the lock.
func (s *S) Good() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// GoodManual releases by hand on the only path out.
func (s *S) GoodManual() int {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	return n
}

// BadSend performs a channel send while holding the lock.
func (s *S) BadSend() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- 1 // want `channel send while holding s.mu`
}

// BadRecv blocks on a channel receive under the lock.
func (s *S) BadRecv() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := <-s.ch // want `channel receive while holding s.mu`
	return v
}

// BadSleep sleeps while holding the lock.
func (s *S) BadSleep() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time.Sleep while holding s.mu`
}

// BadWait parks on a WaitGroup under the lock.
func (s *S) BadWait() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wg.Wait() // want `sync.WaitGroup.Wait while holding s.mu`
}

// BadFlush does buffered I/O under the lock.
func (s *S) BadFlush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bw.Flush() // want `bufio.Writer.Flush \(buffered I/O\) while holding s.mu`
}

// BadSelect has no default case, so it parks under the lock.
func (s *S) BadSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `blocking select \(no default\) while holding s.mu`
	case v := <-s.ch:
		_ = v
	}
}

// GoodSelect cannot park: the default case makes it a poll.
func (s *S) GoodSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch:
		_ = v
	default:
	}
}

// GoodAfterUnlock blocks only once the lock is gone.
func (s *S) GoodAfterUnlock() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.ch <- s.n
}

// BadReturn leaks the lock on the early path.
func (s *S) BadReturn(b bool) int {
	s.mu.Lock()
	if b {
		return 1 // want `return with s.mu still locked \(no deferred unlock on this path\)`
	}
	s.mu.Unlock()
	return 0
}

// BadForget never releases at all.
func (s *S) BadForget() {
	s.mu.Lock()
	s.n++
} // want `function can return with s.mu still locked \(no deferred unlock\)`

// GoodBranches releases on both sides of the branch.
func (s *S) GoodBranches(b bool) int {
	s.mu.Lock()
	if b {
		s.mu.Unlock()
		return 1
	}
	s.mu.Unlock()
	return 0
}

// TwoLocks lists every mutex held at the blocking point.
func (s *S) TwoLocks(t *S) {
	s.mu.Lock()
	t.mu.Lock()
	s.ch <- 1 // want `channel send while holding s.mu, t.mu`
	t.mu.Unlock()
	s.mu.Unlock()
}

// GoodLit: a literal assigned under the lock runs later, on its own
// goroutine or at defer time, so its body is not "under" this lock.
func (s *S) GoodLit() {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := func() {
		time.Sleep(time.Millisecond)
	}
	_ = f
}

// LitChecked: function literals are analyzed with their own fresh lock
// state.
func (s *S) LitChecked() {
	go func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		<-s.ch // want `channel receive while holding s.mu`
	}()
}

type R struct {
	mu sync.RWMutex
	m  map[string]int
}

// Get shows RLock/RUnlock pairing is tracked like Lock/Unlock.
func (r *R) Get(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[k]
}

// BadRead blocks while holding the read lock.
func (r *R) BadRead(ch chan int) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return <-ch // want `channel receive while holding r.mu`
}
