package analysis

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// IgnoreEntry is one //lint:ignore directive found in the tree, with
// enough context to audit it: where it is, what it silences, and why.
// A directive without a reason is inert (it suppresses nothing), so
// Reason == "" marks a directive that is both useless and misleading —
// the audit fails on those.
type IgnoreEntry struct {
	File      string
	Line      int
	Analyzers string // comma-joined, as written
	Reason    string
}

// AuditIgnores walks root for .go files and collects every
// //lint:ignore directive, using the same comment parse the
// suppression engine uses — prose that merely mentions the directive
// (doc comments, string literals) does not count. Vendored fixtures
// (testdata), build output (bin) and VCS metadata are skipped:
// fixtures deliberately contain directives under test, and auditing
// them would drown the signal.
func AuditIgnores(root string) ([]IgnoreEntry, error) {
	var entries []IgnoreEntry
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "testdata", "bin", ".git":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("auditing %s: %v", path, err)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				fields := strings.SplitN(strings.TrimSpace(strings.TrimPrefix(text, "lint:ignore")), " ", 2)
				e := IgnoreEntry{File: path, Line: fset.Position(c.Pos()).Line}
				if len(fields) > 0 {
					e.Analyzers = fields[0]
				}
				if len(fields) > 1 {
					e.Reason = strings.TrimSpace(fields[1])
				}
				entries = append(entries, e)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].File != entries[j].File {
			return entries[i].File < entries[j].File
		}
		return entries[i].Line < entries[j].Line
	})
	return entries, nil
}

// String renders the entry in the file:line form the audit prints.
func (e IgnoreEntry) String() string {
	reason := e.Reason
	if reason == "" {
		reason = "<no reason: directive is inert>"
	}
	return fmt.Sprintf("%s:%d: %s — %s", e.File, e.Line, e.Analyzers, reason)
}
