package nilmetrics_test

import (
	"testing"

	"directload/internal/analysis/analysistest"
	"directload/internal/analysis/nilmetrics"
)

func TestNilMetrics(t *testing.T) {
	analysistest.Run(t, "testdata", nilmetrics.Analyzer, "metrics", "consumer")
}
