// Package metrics is a fixture standing in for directload's metrics
// package: handle types promise nil-receiver safety on every exported
// method.
package metrics

import "sync"

type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
}

type Counter struct {
	n int64
}

// Counter is the good case: leading nil guard before any field access.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		if r.counters == nil {
			r.counters = make(map[string]*Counter)
		}
		r.counters[name] = c
	}
	return c
}

// Len is the bad case: dereferences fields with no guard.
func (r *Registry) Len() int { // want `exported method Registry.Len dereferences its receiver without a leading nil guard`
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.counters)
}

// Touch only delegates to other (guarded) exported methods, so it needs
// no guard of its own.
func (r *Registry) Touch(name string) {
	r.Counter(name).Inc()
}

// reset is unexported: internal helpers run on receivers already known
// non-nil.
func (r *Registry) reset() {
	r.counters = nil
}

func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.n++
}

// Add lacks the guard and touches c.n directly.
func (c *Counter) Add(delta int64) { // want `exported method Counter.Add dereferences its receiver without a leading nil guard`
	c.n += delta
}

// Value has a value receiver, which can never be nil.
func (c Counter) Value() int64 {
	return c.n
}

// RuntimeSampler stands in for the continuous-profiling sampler: same
// nil-receiver contract as the older handle types.
type RuntimeSampler struct {
	mu    sync.Mutex
	count int
}

func (s *RuntimeSampler) Count() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Last misses the guard.
func (s *RuntimeSampler) Last() int { // want `exported method RuntimeSampler.Last dereferences its receiver without a leading nil guard`
	return s.count
}

// AttribTable stands in for the per-op resource attribution table.
type AttribTable struct {
	every int64
}

func (t *AttribTable) SampleEvery() int64 {
	if t == nil {
		return 0
	}
	return t.every
}

// Reset misses the guard.
func (t *AttribTable) Reset() { // want `exported method AttribTable.Reset dereferences its receiver without a leading nil guard`
	t.every = 0
}

// BurnProfiler stands in for the SLO-burn profile trigger.
type BurnProfiler struct {
	captures int
}

func (p *BurnProfiler) Captures() int {
	if p == nil {
		return 0
	}
	return p.captures
}

// CaptureNow misses the guard.
func (p *BurnProfiler) CaptureNow() { // want `exported method BurnProfiler.CaptureNow dereferences its receiver without a leading nil guard`
	p.captures++
}

// pool holds a Counter by value inside the declaring package, which is
// allowed (rule 2 exempts the package that owns the type).
type pool struct {
	spare Counter
}

var _ = pool{}
var _ = (*Registry).reset
