// Package consumer is a fixture exercising the consumer-side rules:
// guarded types held by value (rule 2) and redundant nil guards around
// nil-safe method calls (rule 3).
package consumer

import "metrics"

type Server struct {
	reg  *metrics.Registry // pointers are the contract
	ops  metrics.Counter   // want `metrics.Counter held by value`
	tags []*metrics.Counter
}

var Global metrics.Counter // want `metrics.Counter held by value`

var GlobalPtr *metrics.Counter

func New(reg *metrics.Registry) *Server {
	return &Server{reg: reg}
}

func Record(c metrics.Counter) { // want `metrics.Counter held by value`
	_ = c
}

func Make() (out metrics.Registry) { // want `metrics.Registry held by value`
	return
}

func (s *Server) Handle() {
	if s.reg != nil { // want `redundant nil guard: methods on s.reg are nil-safe by contract`
		s.reg.Counter("ops").Inc()
	}
	// The contract makes the unconditional call safe.
	s.reg.Counter("ops").Inc()
}

func (s *Server) HandleMixed(n int) int {
	// Not redundant: the body does more than call nil-safe methods.
	if s.reg != nil {
		n++
		s.reg.Counter("ops").Inc()
	}
	return n
}

func (s *Server) HandleElse() {
	// Not redundant: an else branch means the guard carries logic.
	if s.reg != nil {
		s.reg.Counter("ops").Inc()
	} else {
		Global.Inc()
	}
}

// The PR 8 observability types obey the same two consumer rules.
type Telemetry struct {
	sampler *metrics.RuntimeSampler // pointers are the contract
	attrib  metrics.AttribTable     // want `metrics.AttribTable held by value`
	burn    *metrics.BurnProfiler
}

var Sampler metrics.RuntimeSampler // want `metrics.RuntimeSampler held by value`

func Profile(p metrics.BurnProfiler) { // want `metrics.BurnProfiler held by value`
	_ = p
}

func (t *Telemetry) Snapshot() int {
	if t.sampler != nil { // want `redundant nil guard: methods on t.sampler are nil-safe by contract`
		t.sampler.Count()
	}
	if t.burn != nil { // want `redundant nil guard: methods on t.burn are nil-safe by contract`
		t.burn.CaptureNow()
	}
	// The contract makes the unconditional calls safe.
	t.burn.CaptureNow()
	return t.sampler.Count()
}
