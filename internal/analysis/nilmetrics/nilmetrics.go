// Package nilmetrics enforces the nil-safe *metrics.Registry contract:
// every subsystem holds an optional registry and instruments
// unconditionally, which is only sound while every exported method on
// the metrics handle types starts with a nil-receiver guard.
//
// Three rules:
//
//  1. Inside the metrics package, an exported pointer-receiver method
//     on a guarded type (Registry, SlowLog, Tracer, Counter, Gauge,
//     Histogram, RuntimeSampler, AttribTable, BurnProfiler, ...) that
//     touches a receiver field must open with an `if recv == nil`
//     guard. Methods that only call other (guarded) methods are exempt.
//  2. Everywhere, guarded types must be held by pointer: a struct
//     field, variable or parameter declared with the bare value type
//     copies the embedded lock and breaks the nil contract.
//  3. In consumer code, wrapping calls in `if reg != nil { ... }` is
//     flagged as redundant: the whole point of the contract is that
//     call sites never need the guard.
package nilmetrics

import (
	"go/ast"
	"go/token"
	"go/types"

	"directload/internal/analysis"
)

// Analyzer is the nilmetrics check.
var Analyzer = &analysis.Analyzer{
	Name: "nilmetrics",
	Doc:  "enforce the nil-safe *metrics.Registry/*metrics.SlowLog contract",
	Run:  run,
}

// guardedTypes are the metrics types whose exported methods promise
// nil-receiver safety.
var guardedTypes = map[string]bool{
	"Registry":       true,
	"SlowLog":        true,
	"Tracer":         true,
	"Counter":        true,
	"Gauge":          true,
	"Histogram":      true,
	"SLO":            true,
	"EventLog":       true,
	"RuntimeSampler": true,
	"AttribTable":    true,
	"BurnProfiler":   true,
}

// isGuardedNamed reports whether t (sans pointer) is one of the
// guarded types declared in a metrics package.
func isGuardedNamed(t types.Type) bool {
	t = analysis.Deref(t)
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && guardedTypes[obj.Name()] &&
		analysis.PkgPathMatches(obj.Pkg().Path(), "metrics")
}

func run(pass *analysis.Pass) error {
	inMetrics := analysis.PkgPathMatches(pass.Pkg.Path(), "metrics")
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && inMetrics {
				checkMethodGuard(pass, fd)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				checkValueFields(pass, n.Fields)
			case *ast.FuncType:
				checkValueFields(pass, n.Params)
				checkValueFields(pass, n.Results)
			case *ast.ValueSpec:
				if n.Type != nil {
					checkValueType(pass, n.Type)
				}
			case *ast.IfStmt:
				if !inMetrics {
					checkRedundantGuard(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

// checkMethodGuard implements rule 1.
func checkMethodGuard(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil || !fd.Name.IsExported() {
		return
	}
	recvField := fd.Recv.List[0]
	if _, ok := recvField.Type.(*ast.StarExpr); !ok {
		return // value receivers cannot be nil
	}
	if len(recvField.Names) == 0 || recvField.Names[0].Name == "_" {
		return // receiver unused: body cannot dereference it
	}
	recvObj := pass.TypesInfo.Defs[recvField.Names[0]]
	if recvObj == nil || !isGuardedNamed(recvObj.Type()) {
		return
	}
	if !accessesReceiverField(pass, fd.Body, recvObj) {
		return // method delegates to other (guarded) methods only
	}
	if hasLeadingNilGuard(pass, fd.Body, recvObj) {
		return
	}
	pass.Reportf(fd.Name.Pos(),
		"exported method %s.%s dereferences its receiver without a leading nil guard; the metrics nil-safety contract requires `if %s == nil` first",
		analysis.Deref(recvObj.Type()).(*types.Named).Obj().Name(), fd.Name.Name, recvObj.Name())
}

// accessesReceiverField reports whether body reads or writes a field
// of the receiver object directly (method calls don't count).
func accessesReceiverField(pass *analysis.Pass, body *ast.BlockStmt, recv types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || found {
			return !found
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != recv {
			return true
		}
		if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
			found = true
		}
		return !found
	})
	return found
}

// hasLeadingNilGuard reports whether the first statement of body is an
// if statement whose condition tests recv == nil (possibly or-ed with
// other conditions).
func hasLeadingNilGuard(pass *analysis.Pass, body *ast.BlockStmt, recv types.Object) bool {
	if len(body.List) == 0 {
		return false
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok {
		return false
	}
	return condTestsNil(pass, ifs.Cond, recv, token.EQL)
}

// condTestsNil reports whether cond contains `obj <op> nil`.
func condTestsNil(pass *analysis.Pass, cond ast.Expr, obj types.Object, op token.Token) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != op || found {
			return !found
		}
		if isObjIdent(pass, be.X, obj) && isNilIdent(pass, be.Y) ||
			isObjIdent(pass, be.Y, obj) && isNilIdent(pass, be.X) {
			found = true
		}
		return !found
	})
	return found
}

func isObjIdent(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == obj
}

func isNilIdent(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNil
}

// checkValueFields implements rule 2 over a field list.
func checkValueFields(pass *analysis.Pass, fields *ast.FieldList) {
	if fields == nil {
		return
	}
	for _, f := range fields.List {
		checkValueType(pass, f.Type)
	}
}

func checkValueType(pass *analysis.Pass, typeExpr ast.Expr) {
	tv, ok := pass.TypesInfo.Types[typeExpr]
	if !ok {
		return
	}
	t := types.Unalias(tv.Type)
	named, ok := t.(*types.Named)
	if !ok {
		return // pointers, slices, maps of the type are fine
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !guardedTypes[obj.Name()] ||
		!analysis.PkgPathMatches(obj.Pkg().Path(), "metrics") {
		return
	}
	if analysis.PkgPathMatches(pass.Pkg.Path(), "metrics") && obj.Pkg() == pass.Pkg {
		return // the declaring package may use its own values internally
	}
	pass.Reportf(typeExpr.Pos(),
		"metrics.%s held by value; declare *metrics.%s so the nil-safe contract (and the embedded lock) survive",
		obj.Name(), obj.Name())
}

// checkRedundantGuard implements rule 3.
func checkRedundantGuard(pass *analysis.Pass, ifs *ast.IfStmt) {
	if ifs.Else != nil || ifs.Init != nil || len(ifs.Body.List) == 0 {
		return
	}
	be, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ {
		return
	}
	var guarded ast.Expr
	switch {
	case isNilIdent(pass, be.Y):
		guarded = be.X
	case isNilIdent(pass, be.X):
		guarded = be.Y
	default:
		return
	}
	gt, ok := pass.TypesInfo.Types[guarded]
	if !ok || !isGuardedNamed(gt.Type) {
		return
	}
	if _, isPtr := types.Unalias(gt.Type).(*types.Pointer); !isPtr {
		return
	}
	key := analysis.ExprString(guarded)
	for _, stmt := range ifs.Body.List {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			return
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return
		}
		recv := analysis.ReceiverExpr(call)
		// Accept chained calls like reg.Counter("x").Inc(): the guard
		// is redundant as long as the chain is rooted at the guarded
		// expression.
		for recv != nil && analysis.ExprString(recv) != key {
			inner, ok := ast.Unparen(recv).(*ast.CallExpr)
			if !ok {
				return
			}
			recv = analysis.ReceiverExpr(inner)
		}
		if recv == nil {
			return
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !sel.Sel.IsExported() {
			return
		}
	}
	pass.Reportf(ifs.Pos(),
		"redundant nil guard: methods on %s are nil-safe by contract; call them unconditionally", key)
}
