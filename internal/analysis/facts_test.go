package analysis_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"directload/internal/analysis"
)

// loadFixture loads a testdata package plus its fixture-local deps.
func loadFixture(t *testing.T, path string) (*analysis.Loader, *analysis.Package) {
	t.Helper()
	loader := analysis.NewLoader("testdata")
	pkg, err := loader.Load(path)
	if err != nil {
		t.Fatalf("loading %s: %v", path, err)
	}
	return loader, pkg
}

func factsFor(t *testing.T, loader *analysis.Loader, pkg *analysis.Package) *analysis.FactSet {
	t.Helper()
	return analysis.ComputeFacts(pkg, loader.ImportedFacts(pkg))
}

func TestComputeFactsSummaries(t *testing.T) {
	loader, pkg := loadFixture(t, "facthelp")
	fs := factsFor(t, loader, pkg)

	want := map[string]analysis.FuncFact{
		"(facthelp.Sink).Keep":         {Retains: []int{0}},
		"(facthelp.Sink).KeepMap":      {Retains: []int{1}},
		"(facthelp.Sink).CopyOut":      {},
		"(facthelp.Sink).KeepIndirect": {Retains: []int{0}},
		"facthelp.Finish":              {EndsSpan: []int{0}},
		"facthelp.FinishDeferred":      {EndsSpan: []int{0}},
		"facthelp.Drop":                {},
		"facthelp.Recycle":             {Puts: []int{1}},
		"facthelp.Spin":                {LoopsForever: true},
		"facthelp.Serve":               {Blocks: true},
		"facthelp.WaitOn":              {Blocks: true},
	}
	for key, w := range want {
		got := fs.Funcs[key]
		if got == nil {
			t.Errorf("%s: no fact computed", key)
			continue
		}
		if !reflect.DeepEqual(got.Retains, w.Retains) || !reflect.DeepEqual(got.Puts, w.Puts) ||
			!reflect.DeepEqual(got.EndsSpan, w.EndsSpan) || got.LoopsForever != w.LoopsForever {
			t.Errorf("%s: got %+v, want %+v", key, *got, w)
		}
		if got.Blocks != w.Blocks {
			t.Errorf("%s: Blocks=%v, want %v", key, got.Blocks, w.Blocks)
		}
	}
}

// TestCrossPackageFactImport is the facts channel end to end in loader
// form: factuser's Forward retains its buffer only because the
// imported summary of facthelp's Keep says so.
func TestCrossPackageFactImport(t *testing.T) {
	loader, pkg := loadFixture(t, "factuser")
	fs := factsFor(t, loader, pkg)

	fwd := fs.Funcs["factuser.Forward"]
	if fwd == nil || !fwd.RetainsParam(1) {
		t.Fatalf("factuser.Forward: want Retains=[1] via imported facthelp facts, got %+v", fwd)
	}
	insp := fs.Funcs["factuser.Inspect"]
	if insp == nil {
		t.Fatal("factuser.Inspect: no fact computed")
	}
	if len(insp.Retains) != 0 {
		t.Fatalf("factuser.Inspect: spurious retention %v", insp.Retains)
	}
}

// TestFactRoundTrip: Encode then DecodeFacts reproduces the set — the
// vetx persistence path.
func TestFactRoundTrip(t *testing.T) {
	loader, pkg := loadFixture(t, "facthelp")
	fs := factsFor(t, loader, pkg)

	data := fs.Encode()
	back, err := analysis.DecodeFacts(data)
	if err != nil {
		t.Fatalf("decoding just-encoded facts: %v", err)
	}
	if len(back.Funcs) != len(fs.Funcs) {
		t.Fatalf("round trip lost functions: %d -> %d", len(fs.Funcs), len(back.Funcs))
	}
	for k, v := range fs.Funcs {
		got := back.Funcs[k]
		if got == nil {
			t.Errorf("%s lost in round trip", k)
			continue
		}
		if !reflect.DeepEqual(v, got) {
			t.Errorf("%s: %+v -> %+v", k, *v, *got)
		}
	}
	if !reflect.DeepEqual(fs.AtomicObjs, back.AtomicObjs) {
		t.Errorf("atomic objs: %v -> %v", fs.AtomicObjs, back.AtomicObjs)
	}
	// Deterministic bytes: a second encode is identical (the go
	// command caches vetx output by content).
	if !bytes.Equal(data, fs.Encode()) {
		t.Error("Encode is not deterministic")
	}
}

// TestStaleFactsRejected: a fact file from another engine revision (or
// garbage) decodes as an error, so dependents treat it as no facts
// rather than wrong facts.
func TestStaleFactsRejected(t *testing.T) {
	loader, pkg := loadFixture(t, "facthelp")
	fs := factsFor(t, loader, pkg)

	stale := bytes.Replace(fs.Encode(), []byte(analysis.FactsVersion), []byte("directload-vet-facts/0"), 1)
	if _, err := analysis.DecodeFacts(stale); err == nil {
		t.Fatal("stale-version fact file decoded without error")
	} else if !strings.Contains(err.Error(), "stale") {
		t.Fatalf("stale decode error does not say stale: %v", err)
	}
	if _, err := analysis.DecodeFacts([]byte("directload-vet: no facts\n")); err == nil {
		t.Fatal("pre-facts placeholder decoded without error")
	}
}
