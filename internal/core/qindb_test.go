package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"directload/internal/aof"
	"directload/internal/blockfs"
	"directload/internal/ssd"
)

func testFS(t testing.TB, blocks int) blockfs.FS {
	t.Helper()
	cfg := ssd.Config{
		PageSize:      4096,
		PagesPerBlock: 64,
		Blocks:        blocks,
		Latency: ssd.LatencyModel{
			PageRead: 80 * time.Microsecond, PageWrite: 200 * time.Microsecond,
			BlockErase: 1500 * time.Microsecond, Channels: 1,
		},
	}
	d, err := ssd.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return blockfs.NewNativeFS(d)
}

func testOptions() Options {
	return Options{
		AOF:  aof.Config{FileSize: 1 << 20, GCThreshold: 0.25},
		Seed: 1,
	}
}

func openTestDB(t testing.TB, blocks int) *DB {
	t.Helper()
	db, err := Open(testFS(t, blocks), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func mustPut(t testing.TB, db *DB, key string, ver uint64, val string, dedup bool) {
	t.Helper()
	if _, err := db.Put([]byte(key), ver, []byte(val), dedup); err != nil {
		t.Fatalf("Put(%s/%d): %v", key, ver, err)
	}
}

func mustGet(t testing.TB, db *DB, key string, ver uint64) string {
	t.Helper()
	v, _, err := db.Get([]byte(key), ver)
	if err != nil {
		t.Fatalf("Get(%s/%d): %v", key, ver, err)
	}
	return string(v)
}

func TestPutGetBasic(t *testing.T) {
	db := openTestDB(t, 64)
	defer db.Close()
	mustPut(t, db, "url/a", 1, "terms-a-v1", false)
	if got := mustGet(t, db, "url/a", 1); got != "terms-a-v1" {
		t.Fatalf("Get = %q", got)
	}
	if _, _, err := db.Get([]byte("url/a"), 2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing version err = %v", err)
	}
	if _, _, err := db.Get([]byte("nope"), 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key err = %v", err)
	}
}

func TestPutValidation(t *testing.T) {
	db := openTestDB(t, 64)
	defer db.Close()
	if _, err := db.Put(nil, 1, []byte("v"), false); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("empty key err = %v", err)
	}
	db2, err := Open(testFS(t, 64), Options{
		AOF: aof.Config{FileSize: 1 << 20, GCThreshold: 0.25}, MaxValueSize: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.Put([]byte("k"), 1, make([]byte, 11), false); !errors.Is(err, ErrValueTooBig) {
		t.Fatalf("oversize err = %v", err)
	}
}

func TestRePutSameVersion(t *testing.T) {
	db := openTestDB(t, 64)
	defer db.Close()
	mustPut(t, db, "k", 1, "first", false)
	mustPut(t, db, "k", 1, "second", false)
	if got := mustGet(t, db, "k", 1); got != "second" {
		t.Fatalf("Get after re-put = %q", got)
	}
	// The replaced record became dead in the GC table.
	st := db.Stats().Store
	if st.LiveBytes >= st.TotalBytes {
		t.Fatalf("re-put should leave dead bytes: live=%d total=%d", st.LiveBytes, st.TotalBytes)
	}
}

func TestDedupTraceback(t *testing.T) {
	db := openTestDB(t, 64)
	defer db.Close()
	// v1 has the real value; v2, v3 were deduplicated by Bifrost.
	mustPut(t, db, "url/x", 1, "payload-v1", false)
	mustPut(t, db, "url/x", 2, "", true)
	mustPut(t, db, "url/x", 3, "", true)
	for _, ver := range []uint64{1, 2, 3} {
		if got := mustGet(t, db, "url/x", ver); got != "payload-v1" {
			t.Fatalf("Get(v%d) = %q, want traceback to payload-v1", ver, got)
		}
	}
	if tb := db.Stats().Tracebacks; tb != 2 {
		t.Fatalf("Tracebacks = %d, want 2", tb)
	}
	// A fresh value at v4 ends the chain.
	mustPut(t, db, "url/x", 4, "payload-v4", false)
	mustPut(t, db, "url/x", 5, "", true)
	if got := mustGet(t, db, "url/x", 5); got != "payload-v4" {
		t.Fatalf("Get(v5) = %q, want payload-v4", got)
	}
	if got := mustGet(t, db, "url/x", 2); got != "payload-v1" {
		t.Fatalf("Get(v2) = %q, want payload-v1 still", got)
	}
}

func TestDedupBrokenChain(t *testing.T) {
	db := openTestDB(t, 64)
	defer db.Close()
	mustPut(t, db, "orphan", 5, "", true)
	if _, _, err := db.Get([]byte("orphan"), 5); !errors.Is(err, ErrBrokenChain) {
		t.Fatalf("want ErrBrokenChain, got %v", err)
	}
	// Version 0 dedup can never have a prior version.
	mustPut(t, db, "zero", 0, "", true)
	if _, _, err := db.Get([]byte("zero"), 0); !errors.Is(err, ErrBrokenChain) {
		t.Fatalf("v0 dedup want ErrBrokenChain, got %v", err)
	}
}

func TestTracebackSkipsDeletedDedup(t *testing.T) {
	db := openTestDB(t, 64)
	defer db.Close()
	mustPut(t, db, "k", 1, "base", false)
	mustPut(t, db, "k", 2, "", true)
	mustPut(t, db, "k", 3, "", true)
	if _, err := db.Del([]byte("k"), 2); err != nil {
		t.Fatal(err)
	}
	// v3's traceback passes over the deleted dedup v2 and lands on v1.
	if got := mustGet(t, db, "k", 3); got != "base" {
		t.Fatalf("Get(v3) = %q", got)
	}
}

func TestTracebackUsesDeletedValue(t *testing.T) {
	// Paper: a deleted value that newer dedup versions refer to must stay
	// readable through them.
	db := openTestDB(t, 64)
	defer db.Close()
	mustPut(t, db, "k", 1, "base", false)
	mustPut(t, db, "k", 2, "", true)
	if _, err := db.Del([]byte("k"), 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Get([]byte("k"), 1); !errors.Is(err, ErrDeleted) {
		t.Fatalf("direct Get of deleted version err = %v", err)
	}
	if got := mustGet(t, db, "k", 2); got != "base" {
		t.Fatalf("Get(v2) via deleted base = %q", got)
	}
}

func TestDelSemantics(t *testing.T) {
	db := openTestDB(t, 64)
	defer db.Close()
	mustPut(t, db, "k", 1, "v", false)
	if _, err := db.Del([]byte("k"), 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Get([]byte("k"), 1); !errors.Is(err, ErrDeleted) {
		t.Fatalf("Get deleted err = %v", err)
	}
	if _, err := db.Del([]byte("k"), 1); !errors.Is(err, ErrDeleted) {
		t.Fatalf("double Del err = %v", err)
	}
	if _, err := db.Del([]byte("missing"), 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Del missing err = %v", err)
	}
	if _, err := db.Del(nil, 1); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("Del empty key err = %v", err)
	}
	// Revive by re-putting.
	mustPut(t, db, "k", 1, "revived", false)
	if got := mustGet(t, db, "k", 1); got != "revived" {
		t.Fatalf("revived Get = %q", got)
	}
}

func TestGetLatest(t *testing.T) {
	db := openTestDB(t, 64)
	defer db.Close()
	mustPut(t, db, "k", 1, "v1", false)
	mustPut(t, db, "k", 3, "v3", false)
	mustPut(t, db, "k", 2, "v2", false)
	val, ver, _, err := db.GetLatest([]byte("k"))
	if err != nil || ver != 3 || string(val) != "v3" {
		t.Fatalf("GetLatest = %q, v%d, %v", val, ver, err)
	}
	db.Del([]byte("k"), 3)
	val, ver, _, err = db.GetLatest([]byte("k"))
	if err != nil || ver != 2 || string(val) != "v2" {
		t.Fatalf("GetLatest after del = %q, v%d, %v", val, ver, err)
	}
	if _, _, _, err := db.GetLatest([]byte("none")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetLatest missing err = %v", err)
	}
}

func TestDropVersion(t *testing.T) {
	db := openTestDB(t, 64)
	defer db.Close()
	for i := 0; i < 10; i++ {
		mustPut(t, db, fmt.Sprintf("k%d", i), 1, "v1", false)
		mustPut(t, db, fmt.Sprintf("k%d", i), 2, "v2", false)
	}
	n, _, err := db.DropVersion(1)
	if err != nil || n != 10 {
		t.Fatalf("DropVersion = %d, %v; want 10", n, err)
	}
	for i := 0; i < 10; i++ {
		key := []byte(fmt.Sprintf("k%d", i))
		if _, _, err := db.Get(key, 1); !errors.Is(err, ErrDeleted) {
			t.Fatalf("k%d/1 err = %v", i, err)
		}
		if got := mustGet(t, db, fmt.Sprintf("k%d", i), 2); got != "v2" {
			t.Fatalf("k%d/2 = %q", i, got)
		}
	}
	if vs := db.Versions(); len(vs) != 1 || vs[0] != 2 {
		t.Fatalf("Versions = %v, want [2]", vs)
	}
}

func TestRetainVersions(t *testing.T) {
	db := openTestDB(t, 128)
	defer db.Close()
	for v := uint64(1); v <= 6; v++ {
		for i := 0; i < 5; i++ {
			mustPut(t, db, fmt.Sprintf("k%d", i), v, fmt.Sprintf("v%d", v), false)
		}
	}
	dropped, err := db.RetainVersions(4)
	if err != nil || dropped != 2 {
		t.Fatalf("RetainVersions = %d, %v; want 2", dropped, err)
	}
	vs := db.Versions()
	if len(vs) != 4 || vs[0] != 3 || vs[3] != 6 {
		t.Fatalf("Versions = %v, want [3 4 5 6]", vs)
	}
}

func TestVersionsSorted(t *testing.T) {
	db := openTestDB(t, 64)
	defer db.Close()
	for _, v := range []uint64{5, 1, 9, 3} {
		mustPut(t, db, "k", v, "v", false)
	}
	vs := db.Versions()
	want := []uint64{1, 3, 5, 9}
	for i := range want {
		if vs[i] != want[i] {
			t.Fatalf("Versions = %v, want %v", vs, want)
		}
	}
}

func TestRange(t *testing.T) {
	db := openTestDB(t, 64)
	defer db.Close()
	mustPut(t, db, "a", 1, "x", false)
	mustPut(t, db, "b", 1, "x", false)
	mustPut(t, db, "b", 2, "x", false) // newer version: b emitted once with v2
	mustPut(t, db, "c", 1, "x", false)
	mustPut(t, db, "d", 1, "x", false)
	db.Del([]byte("c"), 1)

	type hit struct {
		key string
		ver uint64
	}
	var got []hit
	db.Range([]byte("a"), []byte("d"), func(k []byte, v uint64) bool {
		got = append(got, hit{string(k), v})
		return true
	})
	want := []hit{{"a", 1}, {"b", 2}}
	if len(got) != len(want) {
		t.Fatalf("Range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range = %v, want %v", got, want)
		}
	}
	// Unbounded range includes d.
	got = nil
	db.Range(nil, nil, func(k []byte, v uint64) bool {
		got = append(got, hit{string(k), v})
		return true
	})
	if len(got) != 3 || got[2].key != "d" {
		t.Fatalf("unbounded Range = %v", got)
	}
	// Early stop.
	got = nil
	db.Range(nil, nil, func(k []byte, v uint64) bool {
		got = append(got, hit{string(k), v})
		return false
	})
	if len(got) != 1 {
		t.Fatalf("early-stop Range = %v", got)
	}
}

func TestHas(t *testing.T) {
	db := openTestDB(t, 64)
	defer db.Close()
	mustPut(t, db, "k", 1, "v", false)
	if !db.Has([]byte("k"), 1) || db.Has([]byte("k"), 2) {
		t.Fatal("Has incorrect")
	}
	db.Del([]byte("k"), 1)
	if db.Has([]byte("k"), 1) {
		t.Fatal("Has should be false after Del")
	}
}

func TestClosedErrors(t *testing.T) {
	db := openTestDB(t, 64)
	db.Close()
	if err := db.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double Close err = %v", err)
	}
	if _, err := db.Put([]byte("k"), 1, nil, false); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put err = %v", err)
	}
	if _, _, err := db.Get([]byte("k"), 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get err = %v", err)
	}
	if _, err := db.Del([]byte("k"), 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Del err = %v", err)
	}
	if _, _, err := db.DropVersion(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("DropVersion err = %v", err)
	}
}

func TestStatsAccounting(t *testing.T) {
	db := openTestDB(t, 64)
	defer db.Close()
	mustPut(t, db, "abc", 1, "1234567", false) // 3 + 7 = 10 user bytes
	mustGet(t, db, "abc", 1)
	st := db.Stats()
	if st.Puts != 1 || st.Gets != 1 || st.UserWriteBytes != 10 || st.UserReadBytes != 7 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.Keys != 1 {
		t.Fatalf("Keys = %d", st.Keys)
	}
}

// --- GC behaviour -----------------------------------------------------

// fillVersions writes nKeys keys across nVers versions with val-sized
// values, dropping old versions to keep at most `retain`.
func fillVersions(t testing.TB, db *DB, nKeys, nVers, valSize, retain int) {
	t.Helper()
	val := bytes.Repeat([]byte{0xC4}, valSize)
	for v := 1; v <= nVers; v++ {
		for k := 0; k < nKeys; k++ {
			mustPut(t, db, fmt.Sprintf("key-%04d", k), uint64(v), string(val), false)
		}
		if _, err := db.RetainVersions(retain); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGCReclaimsDroppedVersions(t *testing.T) {
	db := openTestDB(t, 1024) // 256 MB device
	defer db.Close()
	fillVersions(t, db, 50, 8, 20<<10, 2)
	if _, err := db.CollectAll(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats().Store
	if st.GCRuns == 0 {
		t.Fatal("expected GC to run")
	}
	// After draining, disk usage should be near live bytes (within one
	// active file of slack).
	if st.DiskBytes > st.LiveBytes+2<<20 {
		t.Fatalf("disk %d MB vs live %d MB: GC not reclaiming", st.DiskBytes>>20, st.LiveBytes>>20)
	}
	// All current-version data still readable.
	for k := 0; k < 50; k++ {
		mustGet(t, db, fmt.Sprintf("key-%04d", k), 8)
	}
}

func TestGCPreservesDedupReferencedValues(t *testing.T) {
	db := openTestDB(t, 512)
	defer db.Close()
	val := bytes.Repeat([]byte{1}, 10<<10)
	// v1 real values; v2 dedup; fill with other data to seal files; then
	// delete v1 and force GC.
	for k := 0; k < 30; k++ {
		mustPut(t, db, fmt.Sprintf("dup-%02d", k), 1, string(val), false)
	}
	for k := 0; k < 30; k++ {
		mustPut(t, db, fmt.Sprintf("dup-%02d", k), 2, "", true)
	}
	// Filler traffic to roll files.
	for k := 0; k < 200; k++ {
		mustPut(t, db, fmt.Sprintf("filler-%03d", k), 1, string(val), false)
	}
	if _, _, err := db.DropVersion(1); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CollectAll(); err != nil {
		t.Fatal(err)
	}
	// v2 entries must still traceback to the v1 values even though v1 was
	// dropped and its files were garbage collected.
	for k := 0; k < 30; k++ {
		got := mustGet(t, db, fmt.Sprintf("dup-%02d", k), 2)
		if !bytes.Equal([]byte(got), val) {
			t.Fatalf("dup-%02d/2 traceback corrupted after GC", k)
		}
	}
}

func TestGCRemovesUnreferencedDeletedItems(t *testing.T) {
	db := openTestDB(t, 512)
	defer db.Close()
	val := bytes.Repeat([]byte{2}, 10<<10)
	// 300 * 10 KB ≈ 3 MB across ~3 AOFs, so at least two become sealed
	// (the active file is never a GC candidate).
	for k := 0; k < 300; k++ {
		mustPut(t, db, fmt.Sprintf("k-%03d", k), 1, string(val), false)
	}
	before := db.Stats().Keys
	if _, _, err := db.DropVersion(1); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CollectAll(); err != nil {
		t.Fatal(err)
	}
	after := db.Stats().Keys
	if after >= before {
		t.Fatalf("memtable items not removed by GC: %d -> %d", before, after)
	}
}

func TestGCSoftwareWriteAmplificationBounded(t *testing.T) {
	// With a 25% threshold, GC re-appends at most 25% of each collected
	// file: sys writes should stay well under 2x user writes for a
	// version-churn workload.
	db := openTestDB(t, 2048)
	defer db.Close()
	fillVersions(t, db, 40, 10, 20<<10, 2)
	st := db.Stats()
	wa := float64(st.Store.TotalBytes) / float64(st.UserWriteBytes)
	if wa > 2.0 {
		t.Fatalf("software WA = %.2f, want <= 2.0 (paper reports ~2.1 incl. hardware)", wa)
	}
}

func TestAutoGCDisabled(t *testing.T) {
	opts := testOptions()
	opts.DisableAutoGC = true
	db, err := Open(testFS(t, 1024), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	val := bytes.Repeat([]byte{3}, 20<<10)
	for k := 0; k < 300; k++ {
		mustPut(t, db, fmt.Sprintf("k-%03d", k), 1, string(val), false)
	}
	db.DropVersion(1)
	if db.Stats().Store.GCRuns != 0 {
		t.Fatal("auto GC ran despite DisableAutoGC")
	}
	if _, err := db.CollectAll(); err != nil {
		t.Fatal(err)
	}
	if db.Stats().Store.GCRuns == 0 {
		t.Fatal("manual CollectAll did nothing")
	}
}

// --- Concurrency -------------------------------------------------------

func TestConcurrentReadersAndWriters(t *testing.T) {
	db := openTestDB(t, 1024)
	defer db.Close()
	const keys = 50
	for k := 0; k < keys; k++ {
		mustPut(t, db, fmt.Sprintf("k-%02d", k), 1, fmt.Sprintf("val-%02d", k), false)
	}
	done := make(chan error, 8)
	for w := 0; w < 3; w++ {
		go func(w int) {
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k-%02d", i%keys)
				if _, err := db.Put([]byte(k), uint64(2+w), []byte("new"), false); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for r := 0; r < 5; r++ {
		go func() {
			rng := rand.New(rand.NewSource(int64(42)))
			for i := 0; i < 300; i++ {
				k := fmt.Sprintf("k-%02d", rng.Intn(keys))
				if _, _, err := db.Get([]byte(k), 1); err != nil {
					done <- fmt.Errorf("get %s: %w", k, err)
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
