// Package core implements QinDB (Quick-Indexing Database), the paper's
// primary contribution (§2.3): the per-storage-node key-value engine that
// replaces an LSM-tree with a memory-resident sorted table (memtable) of
// keys plus append-only files (AOFs) on SSD holding the values.
//
// Keys are versioned: every entry is addressed as (key, version), written
// as k/t in the paper. The engine mutates the classical GET/PUT/DEL
// operations so they work over deduplicated data (paper Fig. 2):
//
//   - PUT(k/t, v|NULL) appends the record to the AOF tail and inserts a
//     skip-list item carrying the AOF offset, a flag r ("the value field
//     was removed by deduplication") and a flag d ("deleted").
//   - GET(k/t) looks up the skip list; when r is set it traces back to
//     older versions of k until a record with a real value is found.
//   - DEL(k/t) only sets d and updates the GC table's occupancy ratio;
//     space is reclaimed later by the lazy garbage collector.
//
// Sorting happens exclusively in memory, so the only software write
// amplification left is the GC's re-append of still-referenced records.
// Stored on a block-aligned filesystem (blockfs.NativeFS), the engine
// also has zero hardware write amplification.
package core

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"directload/internal/aof"
	"directload/internal/blockfs"
	"directload/internal/metrics"
	"directload/internal/skiplist"
)

// Engine errors.
var (
	ErrNotFound     = errors.New("qindb: not found")
	ErrDeleted      = errors.New("qindb: deleted")
	ErrBrokenChain  = errors.New("qindb: dedup chain has no base value")
	ErrClosed       = errors.New("qindb: closed")
	ErrEmptyKey     = errors.New("qindb: empty key")
	ErrValueTooBig  = errors.New("qindb: value exceeds limit")
	ErrDedupNoPrior = errors.New("qindb: dedup put without any prior version")
)

// item flags in the memtable.
const (
	fDedup         uint8 = 1 << iota // r: value removed by deduplication
	fDeleted                         // d: logically deleted
	fOnDiskDeleted                   // the flash record already carries FlagDropped
	fHasBase                         // dedup item with a resolved traceback base
)

// ikey is the composite memtable key: primary order is the user key
// ascending; secondary order is the version DESCENDING, so the newest
// version of a key is encountered first and traceback to older versions
// is a short forward walk.
type ikey struct {
	key string
	ver uint64
}

func ikeyCompare(a, b ikey) int {
	if c := strings.Compare(a.key, b.key); c != 0 {
		return c
	}
	// Descending version order.
	switch {
	case a.ver > b.ver:
		return -1
	case a.ver < b.ver:
		return 1
	default:
		return 0
	}
}

// item is the memtable payload: where the record lives on flash plus the
// r/d flags of paper Fig. 2. For deduplicated entries, base is the older
// version whose value this entry shares. The binding is resolved once, at
// PUT time (the walk down the skip list to the first older version that
// still carries a value), so a GET is a single extra skip-list lookup and
// the result can never change under garbage collection.
type item struct {
	ref   aof.Ref
	base  uint64 // valid when fHasBase is set
	flags uint8
}

func (it item) has(f uint8) bool { return it.flags&f != 0 }

// Options configures a DB.
type Options struct {
	// AOF holds the append-only file store configuration (file size,
	// GC threshold, free-space pressure override).
	AOF aof.Config
	// MaxValueSize bounds a single value (0 = 64 MiB default).
	MaxValueSize int
	// DisableAutoGC turns off the GC attempt piggybacked on Del and
	// DropVersion; the caller then drives GC via MaybeGC/CollectOnce.
	DisableAutoGC bool
	// CheckpointEveryBytes writes a memtable checkpoint automatically
	// once that many bytes have been appended since the last one
	// (paper §2.1: the memtable "is checkpointed periodically"). Zero
	// disables automatic checkpoints; Checkpoint() always works.
	CheckpointEveryBytes int64
	// Seed makes skip-list level choices deterministic.
	Seed int64
	// Metrics, when non-nil, receives the engine's `qindb.*` metrics and
	// is propagated to the AOF store (`aof.*`). GC cycles, checkpoints
	// and recovery record spans on the registry's tracer. Nil keeps all
	// hot paths allocation-free.
	Metrics *metrics.Registry
}

// DefaultOptions mirrors the paper's configuration: 64 MB AOFs and a
// 25 % occupancy GC threshold.
func DefaultOptions() Options {
	return Options{AOF: aof.DefaultConfig(), MaxValueSize: 64 << 20, Seed: 1}
}

// Stats aggregates engine counters for the experiments.
type Stats struct {
	Keys           int   // memtable items (all versions)
	UserWriteBytes int64 // application payload bytes accepted by Put/Del
	UserReadBytes  int64 // value bytes returned by Get
	Puts           int64
	Gets           int64
	Dels           int64
	Tracebacks     int64 // GETs that had to follow the dedup chain
	Checkpoints    int64 // memtable checkpoints written
	Store          aof.Stats
}

// DB is a QinDB instance over one (simulated) SSD.
type DB struct {
	mu    sync.RWMutex
	table *skiplist.List[ikey, item]
	store *aof.Store
	opts  Options
	fs    blockfs.FS

	closed         bool
	memBytes       int64 // approximate memtable footprint (key bytes + overhead)
	userWriteBytes int64
	userReadBytes  int64
	puts, gets     int64
	dels           int64
	tracebacks     int64
	versions       map[uint64]int // live item count per version
	maxSeq         uint64         // highest sequence replayed or appended
	sinceCkpt      int64          // bytes appended since the last checkpoint
	checkpoints    int64

	reg *metrics.Registry
	met engineMetrics
}

// memItemOverhead approximates the per-item memtable footprint beyond
// the key bytes (skip-list node, item struct, version map share).
const memItemOverhead = 64

// engineMetrics holds the engine's registry handles; all nil without a
// registry, and the metric types' nil-receiver no-ops make every record
// site a guarded no-op in that case.
type engineMetrics struct {
	putLat      *metrics.Histogram
	getLat      *metrics.Histogram
	delLat      *metrics.Histogram
	putBytes    *metrics.Counter
	dedupPuts   *metrics.Counter
	tracebacks  *metrics.Counter
	memBytes    *metrics.Gauge
	gcReclaimed *metrics.Counter
}

func newEngineMetrics(reg *metrics.Registry) engineMetrics {
	return engineMetrics{
		putLat:      reg.Histogram("qindb.put.latency_us"),
		getLat:      reg.Histogram("qindb.get.latency_us"),
		delLat:      reg.Histogram("qindb.del.latency_us"),
		putBytes:    reg.Counter("qindb.put.bytes"),
		dedupPuts:   reg.Counter("qindb.put.dedup"),
		tracebacks:  reg.Counter("qindb.get.tracebacks"),
		memBytes:    reg.Gauge("qindb.memtable.bytes"),
		gcReclaimed: reg.Counter("qindb.gc.reclaimed_bytes"),
	}
}

// Open creates or recovers a DB over fs. If the filesystem already
// contains AOFs (and optionally a checkpoint), the memtable and GC table
// are rebuilt from them — the recovery path of paper §2.3.
func Open(fs blockfs.FS, opts Options) (*DB, error) {
	if opts.AOF.FileSize == 0 {
		opts.AOF = aof.DefaultConfig()
	}
	if opts.MaxValueSize == 0 {
		opts.MaxValueSize = 64 << 20
	}
	if opts.AOF.Metrics == nil {
		opts.AOF.Metrics = opts.Metrics
	}
	store, err := aof.Open(fs, opts.AOF)
	if err != nil {
		return nil, err
	}
	db := &DB{
		table:    skiplist.New[ikey, item](ikeyCompare, opts.Seed),
		store:    store,
		opts:     opts,
		fs:       fs,
		versions: make(map[uint64]int),
		reg:      opts.Metrics,
		met:      newEngineMetrics(opts.Metrics),
	}
	endRecover := db.reg.Span("qindb.recovery")
	err = db.recover()
	endRecover(err)
	if err != nil {
		return nil, fmt.Errorf("qindb: recovery: %w", err)
	}
	// Seed the memtable footprint with whatever recovery rebuilt.
	db.table.AscendAll(func(k ikey, v item) bool {
		db.memBytes += int64(len(k.key)) + memItemOverhead
		return true
	})
	db.registerDerivedMetrics()
	return db, nil
}

// HealthReport is a point-in-time engine readiness snapshot — the
// inputs of an operator's /readyz decision.
type HealthReport struct {
	Closed        bool  `json:"closed"`
	MemtableBytes int64 `json:"memtable_bytes"`
	// UnderPressure reports the AOF device near capacity even after GC
	// has had its chance — writes may soon start failing.
	UnderPressure bool `json:"under_pressure"`
}

// Health returns the engine's readiness snapshot. Usable (and cheap)
// with or without a metrics registry.
func (db *DB) Health() HealthReport {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return HealthReport{
		Closed:        db.closed,
		MemtableBytes: db.memBytes,
		UnderPressure: db.store.UnderPressure(),
	}
}

// registerDerivedMetrics publishes the computed gauges the experiments
// report: memtable size and the software write-amplification ratio
// (AOF bytes physically appended — including GC re-appends — over user
// payload bytes accepted; the paper's "up to 2.5x" metric). A no-op
// without a registry.
func (db *DB) registerDerivedMetrics() {
	if db.reg == nil {
		return
	}
	db.met.memBytes.Set(db.memBytes)
	db.reg.GaugeFunc("qindb.memtable.items", func() float64 {
		db.mu.RLock()
		defer db.mu.RUnlock()
		return float64(db.table.Len())
	})
	db.reg.GaugeFunc("qindb.software_wa", func() float64 {
		db.mu.RLock()
		user := db.userWriteBytes
		db.mu.RUnlock()
		if user == 0 {
			return 0
		}
		return float64(db.store.Stats().AppendedBytes) / float64(user)
	})
}

// Close seals the active AOF. The DB must not be used afterwards.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	db.closed = true
	return db.store.Close()
}

// Put stores value under (key, version). A nil/empty value with
// dedup=true records a deduplicated entry whose real payload lives in an
// older version (Bifrost stripped it before transmission); the traceback
// base is resolved now and persisted inside the record, so recovery and
// GC reproduce exactly this binding. Put returns the simulated device
// cost of the operation.
func (db *DB) Put(key []byte, version uint64, value []byte, dedup bool) (time.Duration, error) {
	if len(key) == 0 {
		return 0, ErrEmptyKey
	}
	if len(value) > db.opts.MaxValueSize {
		return 0, fmt.Errorf("%w: %d bytes", ErrValueTooBig, len(value))
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, ErrClosed
	}
	rec := aof.Record{Key: key, Version: version, Value: value}
	var flags uint8
	var base uint64
	if dedup {
		rec.Flags |= aof.FlagDedup
		rec.Value = nil
		flags = fDedup
		if b, ok := db.resolveBaseLocked(string(key), version); ok {
			base = b
			flags |= fHasBase
			rec.Value = encodeBase(b)
		}
	}
	ref, seq, cost, err := db.store.Append(rec)
	if err != nil {
		return cost, err
	}
	db.noteSeq(seq)
	ik := ikey{string(key), version}
	if old, ok := db.table.Get(ik); ok {
		// Re-PUT of the same (k, t): the previous record is dead.
		db.store.MarkDead(old.ref)
		db.table.Update(ik, func(item) item { return item{ref: ref, base: base, flags: flags} })
		if old.has(fDeleted) {
			db.versions[version]++ // revived
		}
	} else {
		db.table.Set(ik, item{ref: ref, base: base, flags: flags})
		db.versions[version]++
		db.memBytes += int64(len(key)) + memItemOverhead
		db.met.memBytes.Add(int64(len(key)) + memItemOverhead)
	}
	db.userWriteBytes += int64(len(key) + len(value))
	db.puts++
	db.met.putBytes.Add(int64(len(key) + len(value)))
	if dedup {
		db.met.dedupPuts.Inc()
	}
	db.sinceCkpt += int64(len(key) + len(value))
	// Space-pressure override of the lazy GC policy (paper §4.1.2): when
	// free flash drops below the configured floor, collect the emptiest
	// sealed files immediately, threshold notwithstanding.
	c, err := db.pressureGCLocked()
	cost += c
	if err != nil {
		return cost, err
	}
	c, err = db.maybeCheckpointLocked()
	cost += c
	if err == nil {
		db.met.putLat.Observe(float64(cost) / float64(time.Microsecond))
	}
	return cost, err
}

// pressureGCLocked collects files while the store reports free-space
// pressure. Runs with db.mu held. Bounded by the file count so a store
// of fully-live files cannot loop.
func (db *DB) pressureGCLocked() (time.Duration, error) {
	var total time.Duration
	for attempts := len(db.store.Files()); attempts > 0 && db.store.UnderPressure(); attempts-- {
		id, ok := db.store.PressureCandidate()
		if !ok {
			break
		}
		end := db.reg.Span("gc.cycle")
		reclaimed, cost, err := db.store.CollectFile(id, db.gcJudge, db.gcRelocated)
		end(err)
		db.met.gcReclaimed.Add(reclaimed)
		total += cost
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// resolveBaseLocked walks down from just below version to the first older
// entry of key that carries a real value — the traceback of paper Fig. 2,
// performed once at PUT time. Deleted entries are skipped: they may be
// removed by GC at any moment, and skipping them always keeps the binding
// independent of GC timing. A live dedup entry is a shortcut to its own
// base (whose record GC is guaranteed to preserve).
func (db *DB) resolveBaseLocked(key string, version uint64) (uint64, bool) {
	if version == 0 {
		return 0, false
	}
	var base uint64
	found := false
	db.table.Ascend(ikey{key, version - 1}, func(k ikey, v item) bool {
		if k.key != key {
			return false
		}
		if v.has(fDeleted) {
			return true
		}
		if !v.has(fDedup) {
			base, found = k.ver, true
			return false
		}
		if v.has(fHasBase) {
			base, found = v.base, true
			return false
		}
		return true
	})
	return base, found
}

// encodeBase serializes a traceback base version into a dedup record's
// otherwise-unused value field.
func encodeBase(base uint64) []byte {
	buf := make([]byte, 8)
	for i := 0; i < 8; i++ {
		buf[i] = byte(base >> (8 * i))
	}
	return buf
}

// decodeBase parses encodeBase output; ok is false for records written
// without a resolved base.
func decodeBase(value []byte) (uint64, bool) {
	if len(value) != 8 {
		return 0, false
	}
	var base uint64
	for i := 0; i < 8; i++ {
		base |= uint64(value[i]) << (8 * i)
	}
	return base, true
}

// Get returns the value stored under (key, version), following the dedup
// traceback when the entry's value field was removed (paper Fig. 2). The
// returned cost is the simulated device time spent.
func (db *DB) Get(key []byte, version uint64) ([]byte, time.Duration, error) {
	db.mu.RLock()
	if db.closed {
		db.mu.RUnlock()
		return nil, 0, ErrClosed
	}
	ik := ikey{string(key), version}
	it, ok := db.table.Get(ik)
	if !ok {
		db.mu.RUnlock()
		return nil, 0, fmt.Errorf("%w: %q/%d", ErrNotFound, key, version)
	}
	if it.has(fDeleted) {
		db.mu.RUnlock()
		return nil, 0, fmt.Errorf("%w: %q/%d", ErrDeleted, key, version)
	}
	// Resolve the ref to read from: the item itself, or — when r is set —
	// the base entry bound at PUT time.
	ref := it.ref
	traced := false
	if it.has(fDedup) {
		traced = true
		if !it.has(fHasBase) {
			db.mu.RUnlock()
			return nil, 0, fmt.Errorf("%w: %q/%d", ErrBrokenChain, key, version)
		}
		baseItem, ok := db.table.Get(ikey{string(key), it.base})
		if !ok || baseItem.has(fDedup) {
			db.mu.RUnlock()
			return nil, 0, fmt.Errorf("%w: %q/%d (base %d)", ErrBrokenChain, key, version, it.base)
		}
		ref = baseItem.ref
	}
	// The flash read happens under the shared lock: garbage collection
	// takes the exclusive lock, so an in-flight read both blocks GC (the
	// paper's "deferred if there are ongoing reads" rule) and can never
	// observe a ref whose file GC just erased.
	rec, cost, err := db.store.Read(ref)
	db.mu.RUnlock()
	if err != nil {
		return nil, cost, err
	}
	db.mu.Lock()
	db.gets++
	if traced {
		db.tracebacks++
	}
	db.userReadBytes += int64(len(rec.Value))
	db.mu.Unlock()
	if traced {
		db.met.tracebacks.Inc()
	}
	db.met.getLat.Observe(float64(cost) / float64(time.Microsecond))
	return rec.Value, cost, nil
}

// GetLatest returns the newest live (non-deleted) version of key along
// with its version number.
func (db *DB) GetLatest(key []byte) ([]byte, uint64, time.Duration, error) {
	db.mu.RLock()
	if db.closed {
		db.mu.RUnlock()
		return nil, 0, 0, ErrClosed
	}
	var found bool
	var ver uint64
	db.table.Ascend(ikey{string(key), math.MaxUint64}, func(k ikey, v item) bool {
		if k.key != string(key) {
			return false
		}
		if !v.has(fDeleted) {
			ver = k.ver
			found = true
			return false
		}
		return true
	})
	db.mu.RUnlock()
	if !found {
		return nil, 0, 0, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	val, cost, err := db.Get(key, ver)
	return val, ver, cost, err
}

// Del marks (key, version) deleted: the d flag is set in the memtable, a
// small tombstone record is appended so the deletion survives recovery,
// and the GC table occupancy of the record's file is updated (paper
// Fig. 2, DEL steps 1-2). When auto-GC is enabled and the lazy policy
// allows, one GC pass may run (steps 3-6).
func (db *DB) Del(key []byte, version uint64) (time.Duration, error) {
	if len(key) == 0 {
		return 0, ErrEmptyKey
	}
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return 0, ErrClosed
	}
	ik := ikey{string(key), version}
	it, ok := db.table.Get(ik)
	if !ok || it.has(fDeleted) {
		db.mu.Unlock()
		if ok {
			return 0, fmt.Errorf("%w: %q/%d", ErrDeleted, key, version)
		}
		return 0, fmt.Errorf("%w: %q/%d", ErrNotFound, key, version)
	}
	_, seq, cost, err := db.store.Append(aof.Record{
		Key: key, Version: version, Flags: aof.FlagTombstone,
	})
	if err != nil {
		db.mu.Unlock()
		return cost, err
	}
	db.noteSeq(seq)
	db.table.Update(ik, func(v item) item {
		v.flags |= fDeleted
		return v
	})
	db.store.MarkDead(it.ref)
	db.versions[version]--
	if db.versions[version] <= 0 {
		delete(db.versions, version)
	}
	db.userWriteBytes += int64(len(key))
	db.dels++
	auto := !db.opts.DisableAutoGC
	db.mu.Unlock()
	if auto {
		c, _ := db.MaybeGC()
		cost += c
	}
	db.met.delLat.Observe(float64(cost) / float64(time.Microsecond))
	return cost, nil
}

// DropVersion deletes every entry of the given data version — the bulk
// operation the paper's deletion thread performs when a fifth version
// arrives and the oldest must go (§4.1.1). A single meta-record makes
// the drop durable. Values that newer deduplicated versions still refer
// to remain readable until GC decides their fate.
func (db *DB) DropVersion(version uint64) (int, time.Duration, error) {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return 0, 0, ErrClosed
	}
	_, seq, cost, err := db.store.Append(aof.Record{
		Version: version, Flags: aof.FlagTombstone | aof.FlagVersionDrop,
	})
	if err != nil {
		db.mu.Unlock()
		return 0, cost, err
	}
	db.noteSeq(seq)
	n := db.dropVersionLocked(version)
	auto := !db.opts.DisableAutoGC
	db.mu.Unlock()
	if auto {
		c, _ := db.MaybeGC()
		cost += c
	}
	return n, cost, nil
}

// dropVersionLocked flips d on every live item of the version and
// updates occupancy. Runs with db.mu held.
func (db *DB) dropVersionLocked(version uint64) int {
	type target struct {
		ik  ikey
		ref aof.Ref
	}
	var targets []target
	db.table.AscendAll(func(k ikey, v item) bool {
		if k.ver == version && !v.has(fDeleted) {
			targets = append(targets, target{k, v.ref})
		}
		return true
	})
	for _, tg := range targets {
		db.table.Update(tg.ik, func(v item) item {
			v.flags |= fDeleted
			return v
		})
		db.store.MarkDead(tg.ref)
	}
	delete(db.versions, version)
	return len(targets)
}

// Versions returns the live data versions in ascending order.
func (db *DB) Versions() []uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]uint64, 0, len(db.versions))
	for v := range db.versions {
		out = append(out, v)
	}
	for i := 1; i < len(out); i++ { // insertion sort: tiny n (≤4 in prod)
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// KeyCount reports the number of live (non-deleted) keys in version v
// — what a keyspace summary (RESP DBSIZE, INFO Keyspace) serves without
// walking the memtable.
func (db *DB) KeyCount(version uint64) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.versions[version]
}

// RetainVersions drops the oldest versions until at most n remain,
// returning how many versions were dropped. The paper retains at most
// four versions per store (§1.1.2).
func (db *DB) RetainVersions(n int) (int, error) {
	dropped := 0
	for {
		vs := db.Versions()
		if len(vs) <= n {
			return dropped, nil
		}
		if _, _, err := db.DropVersion(vs[0]); err != nil {
			return dropped, err
		}
		dropped++
	}
}

// Range calls fn for every live (non-deleted) newest-version entry whose
// key is in [from, to); an empty "to" means unbounded. This is the range
// scan capability hash-based stores lack (paper §6.1). Values are not
// fetched; use Get for payloads.
func (db *DB) Range(from, to []byte, fn func(key []byte, version uint64) bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	last := ""
	first := true
	db.table.Ascend(ikey{string(from), math.MaxUint64}, func(k ikey, v item) bool {
		if len(to) > 0 && k.key >= string(to) {
			return false
		}
		if !first && k.key == last {
			return true // older version of a key we already emitted/skipped
		}
		first = false
		last = k.key
		if v.has(fDeleted) {
			return true
		}
		return fn([]byte(k.key), k.ver)
	})
}

// Has reports whether (key, version) exists and is not deleted.
func (db *DB) Has(key []byte, version uint64) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	it, ok := db.table.Get(ikey{string(key), version})
	return ok && !it.has(fDeleted)
}

// Stats returns a snapshot of engine counters.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return Stats{
		Keys:           db.table.Len(),
		UserWriteBytes: db.userWriteBytes,
		UserReadBytes:  db.userReadBytes,
		Puts:           db.puts,
		Gets:           db.gets,
		Dels:           db.dels,
		Tracebacks:     db.tracebacks,
		Checkpoints:    db.checkpoints,
		Store:          db.store.Stats(),
	}
}

// Store exposes the underlying AOF store (read-only use: occupancy
// inspection in experiments).
func (db *DB) Store() *aof.Store { return db.store }

func (db *DB) noteSeq(seq uint64) {
	if seq >= db.maxSeq {
		db.maxSeq = seq + 1
	}
}
