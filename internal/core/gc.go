package core

import (
	"math"
	"time"

	"directload/internal/aof"
)

// MaybeGC runs at most one garbage collection pass if the lazy policy
// allows it: there must be a candidate file at or below the occupancy
// threshold, and either no reads in flight or free-space pressure
// (paper §4.1.2: "the GC will be deferred if there are ongoing reads and
// free disk space").
func (db *DB) MaybeGC() (time.Duration, error) {
	if !db.store.ShouldCollect() {
		return 0, nil
	}
	return db.CollectOnce()
}

// CollectOnce collects the lowest-occupancy candidate file now,
// bypassing the read-deferral rule (used by tests and by the forced
// space-pressure path). It is a no-op when no file qualifies.
func (db *DB) CollectOnce() (time.Duration, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, ErrClosed
	}
	cands := db.store.Candidates()
	if len(cands) == 0 {
		return 0, nil
	}
	end := db.reg.Span("gc.cycle")
	reclaimed, cost, err := db.store.CollectFile(cands[0], db.gcJudge, db.gcRelocated)
	end(err)
	db.met.gcReclaimed.Add(reclaimed)
	return cost, err
}

// CollectAll drains every candidate (used when simulating shutdown
// compaction and in the eager-GC ablation).
func (db *DB) CollectAll() (time.Duration, error) {
	var total time.Duration
	for {
		db.mu.Lock()
		if db.closed {
			db.mu.Unlock()
			return total, ErrClosed
		}
		cands := db.store.Candidates()
		if len(cands) == 0 {
			db.mu.Unlock()
			return total, nil
		}
		end := db.reg.Span("gc.cycle")
		reclaimed, cost, err := db.store.CollectFile(cands[0], db.gcJudge, db.gcRelocated)
		end(err)
		db.met.gcReclaimed.Add(reclaimed)
		db.mu.Unlock()
		total += cost
		if err != nil {
			return total, err
		}
	}
}

// gcJudge decides whether the record at ref survives collection of its
// file (paper Fig. 2, GC step 4). Runs with db.mu held (CollectOnce).
// Side effect: items whose records are dropped for good are removed from
// the skip list ("QinDB also removes their matching items in the skip
// list, which has the deletion flag set already").
func (db *DB) gcJudge(rec *aof.Record, ref aof.Ref) bool {
	if rec.IsVersionDrop() {
		// Version-retention meta-records are a few bytes each and must
		// stay durable for recovery; always relocate.
		return true
	}
	ik := ikey{string(rec.Key), rec.Version}
	if rec.IsTombstone() {
		// A tombstone is needed until the deletion it records is folded
		// into the data record itself (FlagDropped) or the item is gone.
		it, ok := db.table.Get(ik)
		return ok && it.has(fDeleted) && !it.has(fOnDiskDeleted)
	}
	it, ok := db.table.Get(ik)
	if !ok || it.ref != ref {
		return false // item removed earlier, or this is a stale copy
	}
	if !it.has(fDeleted) {
		return true // live data: relocate
	}
	// Deleted: keep only if a newer deduplicated version still refers to
	// this value ("invalid key-value pairs that are referred by later
	// version keys"). Fold the deletion into the relocated record so it
	// survives recovery without the tombstone.
	if db.isReferredLocked(ik.key, ik.ver) {
		rec.Flags |= aof.FlagDropped
		return true
	}
	db.table.Delete(ik)
	db.met.memBytes.Add(-(int64(len(ik.key)) + memItemOverhead))
	return false
}

// gcRelocated updates the skip-list offset of a relocated record (paper
// Fig. 2, GC step 5). Runs with db.mu held.
func (db *DB) gcRelocated(rec aof.Record, old, new aof.Ref) {
	if rec.IsTombstone() || rec.IsVersionDrop() {
		return // no item carries a tombstone ref
	}
	ik := ikey{string(rec.Key), rec.Version}
	db.table.Update(ik, func(v item) item {
		if v.ref == old {
			v.ref = new
			if rec.IsDropped() {
				v.flags |= fOnDiskDeleted
			}
		}
		return v
	})
}

// isReferredLocked reports whether the entry (key, ver) is the bound
// traceback base of any newer deduplicated entry of the same key. This is
// exact because dedup bindings are resolved at PUT time and never change.
func (db *DB) isReferredLocked(key string, ver uint64) bool {
	referred := false
	db.table.Ascend(ikey{key, math.MaxUint64}, func(k ikey, v item) bool {
		if k.key != key || k.ver <= ver {
			return false
		}
		if v.has(fHasBase) && v.base == ver {
			referred = true
			return false
		}
		return true
	})
	return referred
}
