package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"directload/internal/aof"
)

// Recovery and checkpointing (paper §2.1, §2.3): after a failure the
// memtable and the GC table are rebuilt by scanning the AOFs. Periodic
// checkpoints bound the scan: a checkpoint freezes the memtable image
// and the set of sealed AOF files whose records it fully reflects;
// recovery then loads the image and replays only files written (or still
// active) after the checkpoint, in sequence-number order.

const ckptMagic = "QCKP1\n"

func ckptName(floor uint64) string { return fmt.Sprintf("ckpt-%016d", floor) }

func parseCkptName(name string) (uint64, bool) {
	var floor uint64
	if _, err := fmt.Sscanf(name, "ckpt-%016d", &floor); err != nil {
		return 0, false
	}
	return floor, true
}

// Checkpoint writes a durable image of the memtable and returns the
// simulated device cost. Older checkpoints are removed. The caller may
// invoke it on any schedule; with Options.CheckpointEveryBytes set the
// engine also checkpoints itself periodically, as the paper describes.
func (db *DB) Checkpoint() (time.Duration, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, ErrClosed
	}
	return db.checkpointLocked()
}

// maybeCheckpointLocked runs the periodic checkpoint policy. Runs with
// db.mu held.
func (db *DB) maybeCheckpointLocked() (time.Duration, error) {
	if db.opts.CheckpointEveryBytes <= 0 || db.sinceCkpt < db.opts.CheckpointEveryBytes {
		return 0, nil
	}
	return db.checkpointLocked()
}

func (db *DB) checkpointLocked() (cost time.Duration, err error) {
	end := db.reg.Span("qindb.checkpoint")
	defer func() { end(err) }()
	floor := db.maxSeq
	// Every mutation appends a record and advances maxSeq, so an existing
	// checkpoint at this floor already holds an identical image.
	if _, err := db.fs.Size(ckptName(floor)); err == nil {
		return 0, nil
	}
	// Sealed files fully reflected by this checkpoint: every AOF except
	// the active one (whose tail may still grow).
	sealed := db.sealedFilesLocked()

	var body []byte
	put32 := func(v uint32) { body = binary.LittleEndian.AppendUint32(body, v) }
	put64 := func(v uint64) { body = binary.LittleEndian.AppendUint64(body, v) }
	put64(floor)
	put32(uint32(len(sealed)))
	for _, id := range sealed {
		put32(id)
	}
	put32(uint32(db.table.Len()))
	db.table.AscendAll(func(k ikey, v item) bool {
		put32(uint32(len(k.key)))
		body = append(body, k.key...)
		put64(k.ver)
		body = append(body, v.flags)
		put64(v.base)
		put32(v.ref.File)
		put64(uint64(v.ref.Off))
		put32(v.ref.Len)
		return true
	})

	name := ckptName(floor)
	w, err := db.fs.Create(name)
	if err != nil {
		return 0, err
	}
	_, c, err := w.Append([]byte(ckptMagic))
	cost += c
	if err == nil {
		_, c, err = w.Append(body)
		cost += c
	}
	if err == nil {
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(body))
		_, c, err = w.Append(crc[:])
		cost += c
	}
	if err != nil {
		_, cerr := w.Close()
		return cost, errors.Join(err, cerr)
	}
	c, err = w.Close()
	cost += c
	if err != nil {
		return cost, err
	}
	// Drop superseded checkpoints.
	for _, n := range db.fs.List() {
		if f, ok := parseCkptName(n); ok && f < floor {
			if c, err := db.fs.Remove(n); err == nil {
				cost += c
			}
		}
	}
	db.sinceCkpt = 0
	db.checkpoints++
	return cost, nil
}

// sealedFilesLocked returns the ids of AOF files that will receive no
// further appends (everything except the active file).
func (db *DB) sealedFilesLocked() []uint32 {
	ids := db.store.Files()
	if n := len(ids); n > 0 {
		// The store appends strictly to the newest file; all others are
		// sealed. (A rotation could reopen a new id, never an old one.)
		return ids[:n-1]
	}
	return nil
}

// loadCheckpoint reads and validates the newest checkpoint, populating
// the memtable and returning (floorSeq, sealed file set, true). A missing
// or corrupt checkpoint yields ok=false and recovery falls back to a full
// scan.
func (db *DB) loadCheckpoint() (floor uint64, sealed map[uint32]bool, ok bool) {
	var best string
	var bestFloor uint64
	for _, n := range db.fs.List() {
		if f, okName := parseCkptName(n); okName && (best == "" || f > bestFloor) {
			best, bestFloor = n, f
		}
	}
	if best == "" {
		return 0, nil, false
	}
	size, err := db.fs.Size(best)
	if err != nil || size < int64(len(ckptMagic))+4 {
		return 0, nil, false
	}
	r, err := db.fs.Open(best)
	if err != nil {
		return 0, nil, false
	}
	buf := make([]byte, size)
	if _, _, err := r.ReadAt(buf, 0); err != nil {
		return 0, nil, false
	}
	if string(buf[:len(ckptMagic)]) != ckptMagic {
		return 0, nil, false
	}
	body := buf[len(ckptMagic) : size-4]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(buf[size-4:]) {
		return 0, nil, false
	}
	p := 0
	need := func(n int) bool { return p+n <= len(body) }
	get32 := func() uint32 { v := binary.LittleEndian.Uint32(body[p:]); p += 4; return v }
	get64 := func() uint64 { v := binary.LittleEndian.Uint64(body[p:]); p += 8; return v }
	if !need(12) {
		return 0, nil, false
	}
	floor = get64()
	sealedN := int(get32())
	sealed = make(map[uint32]bool, sealedN)
	for i := 0; i < sealedN; i++ {
		if !need(4) {
			return 0, nil, false
		}
		sealed[get32()] = true
	}
	if !need(4) {
		return 0, nil, false
	}
	count := int(get32())
	for i := 0; i < count; i++ {
		if !need(4) {
			return 0, nil, false
		}
		klen := int(get32())
		if !need(klen + 8 + 1 + 8 + 4 + 8 + 4) {
			return 0, nil, false
		}
		key := string(body[p : p+klen])
		p += klen
		ver := get64()
		flags := body[p]
		p++
		base := get64()
		ref := aof.Ref{File: get32()}
		ref.Off = int64(get64())
		ref.Len = get32()
		db.table.Set(ikey{key, ver}, item{ref: ref, base: base, flags: flags})
	}
	return floor, sealed, true
}

// recover rebuilds the memtable, version table and GC occupancy table
// from flash. Called by Open with no other users of the DB.
func (db *DB) recover() error {
	files := db.store.Files()
	if len(files) == 0 && len(db.fs.List()) == 0 {
		return nil // fresh store
	}
	floor, sealedAtCkpt, haveCkpt := db.loadCheckpoint()

	// Gather records that post-date the checkpoint. Files sealed at
	// checkpoint time contain only pre-floor records and are skipped.
	type replayRec struct {
		rec aof.Record
		ref aof.Ref
	}
	var replay []replayRec
	var tombs []replayRec // tombstones, for occupancy rebuild
	var maxSeq uint64
	for _, id := range files {
		if haveCkpt && sealedAtCkpt[id] {
			continue
		}
		err := db.store.ScanFile(id, func(rec aof.Record, ref aof.Ref) error {
			if rec.Seq >= maxSeq {
				maxSeq = rec.Seq + 1
			}
			if haveCkpt && rec.Seq < floor {
				return nil
			}
			replay = append(replay, replayRec{rec, ref})
			return nil
		})
		if err != nil {
			return err
		}
	}
	if floor > maxSeq {
		maxSeq = floor
	}
	sort.SliceStable(replay, func(i, j int) bool { return replay[i].rec.Seq < replay[j].rec.Seq })

	touched := make(map[ikey]bool)
	for _, rr := range replay {
		rec := rr.rec
		switch {
		case rec.IsVersionDrop():
			db.replayVersionDropLocked(rec.Version)
			tombs = append(tombs, rr)
		case rec.IsTombstone():
			ik := ikey{string(rec.Key), rec.Version}
			db.table.Update(ik, func(v item) item {
				v.flags |= fDeleted
				return v
			})
			tombs = append(tombs, rr)
		default:
			ik := ikey{string(rec.Key), rec.Version}
			var flags uint8
			var base uint64
			if rec.IsDedup() {
				flags |= fDedup
				if b, ok := decodeBase(rec.Value); ok {
					base = b
					flags |= fHasBase
				}
			}
			if rec.IsDropped() {
				flags |= fDeleted | fOnDiskDeleted
			}
			db.table.Set(ik, item{ref: rr.ref, base: base, flags: flags})
			touched[ik] = true
		}
	}

	// Checkpointed items whose file was erased by GC after the
	// checkpoint: if the record had been relocated, the replay above
	// re-pointed the item (GC relocation always assigns a post-floor
	// sequence number). Anything still pointing into a missing file was
	// dropped by GC as dead — remove it.
	if haveCkpt {
		exists := make(map[uint32]bool, len(files))
		for _, id := range files {
			exists[id] = true
		}
		var stale []ikey
		db.table.AscendAll(func(k ikey, v item) bool {
			if !touched[k] && !exists[v.ref.File] {
				stale = append(stale, k)
			}
			return true
		})
		for _, k := range stale {
			db.table.Delete(k)
		}
	}

	// Rebuild the version table and the GC occupancy table. Liveness
	// mirrors normal operation: data records count live only while their
	// item is not deleted (Del and DropVersion mark records dead
	// immediately, even when a dedup chain still references them);
	// tombstone records count live from append and are never marked dead.
	db.versions = make(map[uint64]int)
	db.table.AscendAll(func(k ikey, v item) bool {
		if !v.has(fDeleted) {
			db.versions[k.ver]++
			db.store.MarkLive(v.ref)
		}
		return true
	})
	for _, tb := range tombs {
		db.store.MarkLive(tb.ref)
	}

	db.maxSeq = maxSeq
	db.store.SeqFloor(maxSeq)
	return nil
}

// replayVersionDropLocked applies a version-drop meta-record during
// recovery (no occupancy updates: liveness is rebuilt afterwards).
func (db *DB) replayVersionDropLocked(version uint64) {
	var targets []ikey
	db.table.AscendAll(func(k ikey, v item) bool {
		if k.ver == version && !v.has(fDeleted) {
			targets = append(targets, k)
		}
		return true
	})
	for _, ik := range targets {
		db.table.Update(ik, func(v item) item {
			v.flags |= fDeleted
			return v
		})
	}
}
