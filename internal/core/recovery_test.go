package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"directload/internal/blockfs"
)

// reopen simulates a crash: the memtable is lost and the DB is rebuilt
// from the same (simulated) flash.
func reopen(t *testing.T, fs blockfs.FS) *DB {
	t.Helper()
	db, err := Open(fs, testOptions())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return db
}

func TestRecoveryBasic(t *testing.T) {
	fs := testFS(t, 256)
	db, _ := Open(fs, testOptions())
	mustPut(t, db, "a", 1, "va", false)
	mustPut(t, db, "b", 1, "vb", false)
	mustPut(t, db, "b", 2, "", true)
	db.Del([]byte("a"), 1)
	db.Close()

	db2 := reopen(t, fs)
	defer db2.Close()
	if _, _, err := db2.Get([]byte("a"), 1); !errors.Is(err, ErrDeleted) {
		t.Fatalf("deleted key after recovery err = %v", err)
	}
	if got := mustGet(t, db2, "b", 1); got != "vb" {
		t.Fatalf("b/1 = %q", got)
	}
	if got := mustGet(t, db2, "b", 2); got != "vb" {
		t.Fatalf("b/2 traceback after recovery = %q", got)
	}
	if vs := db2.Versions(); len(vs) != 2 {
		t.Fatalf("Versions = %v", vs)
	}
}

func TestRecoveryWithoutClose(t *testing.T) {
	// Crash without sealing the active file: the tail lives in the
	// blockfs write buffer, which simulates the device-visible state.
	fs := testFS(t, 256)
	db, _ := Open(fs, testOptions())
	mustPut(t, db, "k", 7, "survives", false)
	// No Close: reopening must fail cleanly or recover the record. Our
	// blockfs keeps the writer's tail readable, so recovery sees it.
	db2 := reopen(t, fs)
	defer db2.Close()
	if got := mustGet(t, db2, "k", 7); got != "survives" {
		t.Fatalf("Get after crash = %q", got)
	}
}

func TestRecoveryVersionDrop(t *testing.T) {
	fs := testFS(t, 256)
	db, _ := Open(fs, testOptions())
	for v := uint64(1); v <= 3; v++ {
		for i := 0; i < 5; i++ {
			mustPut(t, db, fmt.Sprintf("k%d", i), v, fmt.Sprintf("v%d", v), false)
		}
	}
	db.DropVersion(1)
	db.Close()

	db2 := reopen(t, fs)
	defer db2.Close()
	if vs := db2.Versions(); len(vs) != 2 || vs[0] != 2 || vs[1] != 3 {
		t.Fatalf("Versions after recovery = %v, want [2 3]", vs)
	}
	if _, _, err := db2.Get([]byte("k0"), 1); !errors.Is(err, ErrDeleted) {
		t.Fatalf("dropped version visible after recovery: %v", err)
	}
}

func TestRecoveryAfterGC(t *testing.T) {
	// GC rewrites and erases files; recovery must replay the relocated
	// records (with their folded delete flags) correctly.
	fs := testFS(t, 1024)
	db, _ := Open(fs, testOptions())
	val := bytes.Repeat([]byte{9}, 10<<10)
	// 120 v1 values fill the first sealed AOF almost entirely, so
	// dropping v1 pushes its occupancy under the 25% threshold.
	for k := 0; k < 120; k++ {
		mustPut(t, db, fmt.Sprintf("dup-%03d", k), 1, string(val), false)
	}
	for k := 0; k < 120; k++ {
		mustPut(t, db, fmt.Sprintf("dup-%03d", k), 2, "", true)
	}
	for k := 0; k < 120; k++ {
		mustPut(t, db, fmt.Sprintf("filler-%03d", k), 2, string(val), false)
	}
	db.DropVersion(1)
	if _, err := db.CollectAll(); err != nil {
		t.Fatal(err)
	}
	if db.Stats().Store.GCRuns == 0 {
		t.Fatal("precondition: GC must have run")
	}
	db.Close()

	db2 := reopen(t, fs)
	defer db2.Close()
	// Dropped version stays dropped.
	if _, _, err := db2.Get([]byte("dup-00"), 1); err == nil {
		t.Fatal("v1 should be deleted after recovery")
	}
	// Dedup traceback to relocated (FlagDropped) records still works.
	for k := 0; k < 120; k++ {
		got := mustGet(t, db2, fmt.Sprintf("dup-%03d", k), 2)
		if !bytes.Equal([]byte(got), val) {
			t.Fatalf("dup-%03d/2 wrong after GC+recovery", k)
		}
	}
	for k := 0; k < 120; k++ {
		mustGet(t, db2, fmt.Sprintf("filler-%03d", k), 2)
	}
}

func TestRecoveryOccupancyRebuild(t *testing.T) {
	fs := testFS(t, 1024)
	db, _ := Open(fs, testOptions())
	val := bytes.Repeat([]byte{5}, 10<<10)
	for k := 0; k < 200; k++ {
		mustPut(t, db, fmt.Sprintf("k-%03d", k), 1, string(val), false)
	}
	for k := 0; k < 100; k++ { // delete half
		db.Del([]byte(fmt.Sprintf("k-%03d", k)), 1)
	}
	want := db.Stats().Store
	db.Close()

	db2 := reopen(t, fs)
	defer db2.Close()
	got := db2.Stats().Store
	if got.LiveBytes != want.LiveBytes {
		t.Fatalf("LiveBytes after recovery = %d, want %d", got.LiveBytes, want.LiveBytes)
	}
	// GC still works after a rebuild: drop the rest and collect.
	for k := 100; k < 200; k++ {
		db2.Del([]byte(fmt.Sprintf("k-%03d", k)), 1)
	}
	if _, err := db2.CollectAll(); err != nil {
		t.Fatal(err)
	}
	if db2.Stats().Store.GCRuns == 0 {
		t.Fatal("GC did not run after recovery")
	}
}

func TestRecoverySeqFloorMonotone(t *testing.T) {
	// New appends after recovery must sort after all recovered records.
	fs := testFS(t, 256)
	db, _ := Open(fs, testOptions())
	mustPut(t, db, "k", 1, "old", false)
	db.Close()

	db2 := reopen(t, fs)
	mustPut(t, db2, "k", 1, "new", false) // re-put: later seq must win
	db2.Close()

	db3 := reopen(t, fs)
	defer db3.Close()
	if got := mustGet(t, db3, "k", 1); got != "new" {
		t.Fatalf("Get after double recovery = %q, want new (seq ordering)", got)
	}
}

func TestCheckpointBasic(t *testing.T) {
	fs := testFS(t, 256)
	db, _ := Open(fs, testOptions())
	for i := 0; i < 50; i++ {
		mustPut(t, db, fmt.Sprintf("k-%02d", i), 1, fmt.Sprintf("v-%02d", i), false)
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint mutations must replay on top of the image.
	mustPut(t, db, "k-00", 2, "newer", false)
	db.Del([]byte("k-01"), 1)
	db.Close()

	db2 := reopen(t, fs)
	defer db2.Close()
	if got := mustGet(t, db2, "k-00", 2); got != "newer" {
		t.Fatalf("k-00/2 = %q", got)
	}
	if _, _, err := db2.Get([]byte("k-01"), 1); !errors.Is(err, ErrDeleted) {
		t.Fatalf("k-01 err = %v", err)
	}
	for i := 2; i < 50; i++ {
		if got := mustGet(t, db2, fmt.Sprintf("k-%02d", i), 1); got != fmt.Sprintf("v-%02d", i) {
			t.Fatalf("k-%02d = %q", i, got)
		}
	}
}

func TestCheckpointSupersedesOlder(t *testing.T) {
	fs := testFS(t, 256)
	db, _ := Open(fs, testOptions())
	mustPut(t, db, "a", 1, "x", false)
	db.Checkpoint()
	mustPut(t, db, "b", 1, "y", false)
	db.Checkpoint()
	var ckpts int
	for _, n := range fs.List() {
		if _, ok := parseCkptName(n); ok {
			ckpts++
		}
	}
	if ckpts != 1 {
		t.Fatalf("checkpoint files = %d, want 1 (older removed)", ckpts)
	}
	db.Close()
	db2 := reopen(t, fs)
	defer db2.Close()
	mustGet(t, db2, "a", 1)
	mustGet(t, db2, "b", 1)
}

func TestCheckpointThenGCThenRecovery(t *testing.T) {
	// The hard case: checkpoint captures refs, then GC erases some of the
	// checkpointed files. Relocated records must be re-pointed by replay
	// and dead ones dropped.
	fs := testFS(t, 1024)
	db, _ := Open(fs, testOptions())
	val := bytes.Repeat([]byte{7}, 10<<10)
	for k := 0; k < 200; k++ {
		mustPut(t, db, fmt.Sprintf("k-%03d", k), 1, string(val), false)
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Kill the first half and GC aggressively.
	for k := 0; k < 100; k++ {
		db.Del([]byte(fmt.Sprintf("k-%03d", k)), 1)
	}
	if _, err := db.CollectAll(); err != nil {
		t.Fatal(err)
	}
	if db.Stats().Store.GCRuns == 0 {
		t.Fatal("precondition: GC must have run")
	}
	keysBefore := db.Stats().Keys
	db.Close()

	db2 := reopen(t, fs)
	defer db2.Close()
	if got := db2.Stats().Keys; got != keysBefore {
		t.Fatalf("Keys after recovery = %d, want %d", got, keysBefore)
	}
	for k := 0; k < 100; k++ {
		if _, _, err := db2.Get([]byte(fmt.Sprintf("k-%03d", k)), 1); err == nil {
			t.Fatalf("k-%03d should be gone", k)
		}
	}
	for k := 100; k < 200; k++ {
		got := mustGet(t, db2, fmt.Sprintf("k-%03d", k), 1)
		if !bytes.Equal([]byte(got), val) {
			t.Fatalf("k-%03d corrupted", k)
		}
	}
}

func TestCorruptCheckpointFallsBackToScan(t *testing.T) {
	fs := testFS(t, 256)
	db, _ := Open(fs, testOptions())
	mustPut(t, db, "k", 1, "v", false)
	db.Checkpoint()
	db.Close()

	// Corrupt the checkpoint by replacing it with garbage.
	for _, n := range fs.List() {
		if _, ok := parseCkptName(n); ok {
			fs.Remove(n)
			w, _ := fs.Create(n)
			w.Append([]byte("garbage-not-a-checkpoint"))
			w.Close()
		}
	}
	db2 := reopen(t, fs)
	defer db2.Close()
	if got := mustGet(t, db2, "k", 1); got != "v" {
		t.Fatalf("fallback scan failed: %q", got)
	}
}

// modelOp drives the model-equivalence test below.
type modelOp struct {
	op   int // 0=put, 1=putDedup, 2=del, 3=dropVersion
	key  int
	ver  uint64
	vlen int
}

// TestModelEquivalence runs a random op stream against the engine and an
// in-memory model, checking Get agreement after every crash/recovery.
func TestModelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	fs := testFS(t, 2048)
	db, _ := Open(fs, testOptions())

	type mval struct {
		val     []byte
		dedup   bool
		base    uint64 // resolved at put time, like the engine
		hasBase bool
		deleted bool
	}
	model := map[string]map[uint64]*mval{} // key -> ver -> state
	keyName := func(k int) string { return fmt.Sprintf("key-%03d", k) }

	// resolveBase mirrors the engine's PUT-time binding: walk versions
	// below ver in descending order, skipping deleted entries; the first
	// live non-dedup entry is the base, and a live dedup entry shortcuts
	// to its own base.
	resolveBase := func(key string, ver uint64) (uint64, bool) {
		var vers []uint64
		for v := range model[key] {
			if v < ver {
				vers = append(vers, v)
			}
		}
		for i := 1; i < len(vers); i++ {
			for j := i; j > 0 && vers[j-1] < vers[j]; j-- {
				vers[j-1], vers[j] = vers[j], vers[j-1]
			}
		}
		for _, v := range vers { // descending
			m := model[key][v]
			if m.deleted {
				continue
			}
			if !m.dedup {
				return v, true
			}
			if m.hasBase {
				return m.base, true
			}
		}
		return 0, false
	}

	apply := func(o modelOp) {
		key := keyName(o.key)
		switch o.op {
		case 0, 1:
			dedup := o.op == 1
			var val []byte
			if !dedup {
				val = make([]byte, o.vlen)
				rng.Read(val)
			}
			if model[key] == nil {
				model[key] = map[uint64]*mval{}
			}
			mv := &mval{val: val, dedup: dedup}
			if dedup {
				mv.base, mv.hasBase = resolveBase(key, o.ver)
			}
			if _, err := db.Put([]byte(key), o.ver, val, dedup); err != nil {
				t.Fatalf("Put: %v", err)
			}
			model[key][o.ver] = mv
		case 2:
			_, err := db.Del([]byte(key), o.ver)
			mv := model[key][o.ver]
			if mv == nil || mv.deleted {
				if err == nil {
					t.Fatalf("Del(%s/%d) should fail", key, o.ver)
				}
				return
			}
			if err != nil {
				t.Fatalf("Del(%s/%d): %v", key, o.ver, err)
			}
			mv.deleted = true
		case 3:
			db.DropVersion(o.ver)
			for _, vers := range model {
				if mv := vers[o.ver]; mv != nil {
					mv.deleted = true
				}
			}
		}
	}

	// expected resolves what Get should return under the model: dedup
	// entries read the value currently stored under their bound base.
	expected := func(key string, ver uint64) ([]byte, bool) {
		vers := model[key]
		mv := vers[ver]
		if mv == nil || mv.deleted {
			return nil, false
		}
		if !mv.dedup {
			return mv.val, true
		}
		if !mv.hasBase {
			return nil, false
		}
		base := vers[mv.base]
		if base == nil || base.dedup {
			return nil, false
		}
		return base.val, true
	}

	check := func() {
		for k := 0; k < 20; k++ {
			key := keyName(k)
			for ver := uint64(1); ver <= 6; ver++ {
				wantVal, wantOK := expected(key, ver)
				gotVal, _, err := db.Get([]byte(key), ver)
				if wantOK {
					if err != nil {
						t.Fatalf("Get(%s/%d) = %v, model expects %d bytes", key, ver, err, len(wantVal))
					}
					if !bytes.Equal(gotVal, wantVal) {
						mv := model[key][ver]
						t.Fatalf("Get(%s/%d) value mismatch: got %d bytes, want %d bytes; model=%+v",
							key, ver, len(gotVal), len(wantVal), *mv)
					}
				} else if err == nil && model[key][ver] != nil && !model[key][ver].deleted {
					// dedup broken chain is allowed to differ only via error
					t.Fatalf("Get(%s/%d) succeeded, model expects failure", key, ver)
				}
			}
		}
	}

	for round := 0; round < 6; round++ {
		for i := 0; i < 300; i++ {
			o := modelOp{
				op:   rng.Intn(4),
				key:  rng.Intn(20),
				ver:  uint64(rng.Intn(6) + 1),
				vlen: rng.Intn(4000) + 1,
			}
			if o.op == 3 && rng.Intn(4) != 0 {
				o.op = 0 // make version drops rarer
			}
			apply(o)
		}
		check()
		if round%2 == 0 {
			if _, err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		db.CollectAll()
		check()
		// Crash and recover.
		db.Close()
		db = reopen(t, fs)
		check()
	}
	db.Close()
}

// TestReviveAfterRelocatedDropSurvivesRecovery pins a bug found by
// cmd/crashtest: GC used to relocate version-drop/tombstone records with
// fresh sequence numbers, so a drop could replay AFTER a later re-put of
// the same key/version and kill the revived entry during recovery.
// Deletion records must keep their original sequence when relocated.
func TestReviveAfterRelocatedDropSurvivesRecovery(t *testing.T) {
	fs := testFS(t, 1024)
	db, _ := Open(fs, testOptions())
	val := bytes.Repeat([]byte{8}, 10<<10)
	// Fill a file with v1 data, drop v1 (the version-drop record lands in
	// a later file), then make the first file a GC candidate.
	for k := 0; k < 120; k++ {
		mustPut(t, db, fmt.Sprintf("k-%03d", k), 1, string(val), false)
	}
	if _, _, err := db.DropVersion(1); err != nil {
		t.Fatal(err)
	}
	// Revive one key at the dropped version BEFORE GC runs on the file
	// holding the version-drop record.
	mustPut(t, db, "k-000", 1, "revived", false)
	// Force GC over everything it can collect: the version-drop record is
	// relocated (it is always preserved).
	if _, err := db.CollectAll(); err != nil {
		t.Fatal(err)
	}
	if got := mustGet(t, db, "k-000", 1); got != "revived" {
		t.Fatalf("pre-crash: %q", got)
	}
	db.Close()

	db2 := reopen(t, fs)
	defer db2.Close()
	if got := mustGet(t, db2, "k-000", 1); got != "revived" {
		t.Fatalf("post-crash: revived key lost, got %q", got)
	}
}
