package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestStressConcurrentMixed hammers the engine with concurrent writers,
// readers, version retirement and explicit GC, then verifies the final
// state. Run with -race to validate the locking discipline.
func TestStressConcurrentMixed(t *testing.T) {
	db := openTestDB(t, 2048)
	defer db.Close()
	const keys = 64
	// Seed version 1 so readers always have something.
	for i := 0; i < keys; i++ {
		mustPut(t, db, fmt.Sprintf("k-%02d", i), 1, fmt.Sprintf("seed-%02d", i), false)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	stop := make(chan struct{})

	// Writers: each owns a version range so they never collide.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			val := make([]byte, 2048)
			for round := 0; round < 30; round++ {
				ver := uint64(10 + w*100 + round)
				for i := 0; i < keys; i++ {
					if _, err := db.Put([]byte(fmt.Sprintf("k-%02d", i)), ver, val, false); err != nil {
						errCh <- fmt.Errorf("writer %d: %w", w, err)
						return
					}
				}
			}
		}(w)
	}
	// Readers: version 1 is never retired in this test.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("k-%02d", rng.Intn(keys))
				if _, _, err := db.Get([]byte(key), 1); err != nil {
					errCh <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
			}
		}(r)
	}
	// Checkpointer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := db.Checkpoint(); err != nil && !errors.Is(err, ErrClosed) {
				errCh <- fmt.Errorf("checkpoint: %w", err)
				return
			}
		}
	}()
	// GC goroutine: collects whatever the lazy policy allows until the
	// workers finish.
	var gcWg sync.WaitGroup
	gcWg.Add(1)
	go func() {
		defer gcWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.MaybeGC(); err != nil && !errors.Is(err, ErrClosed) {
				errCh <- fmt.Errorf("gc: %w", err)
				return
			}
		}
	}()

	wg.Wait()
	close(stop)
	gcWg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	// Final sanity: seeds still readable, writers' last versions too.
	for i := 0; i < keys; i += 9 {
		mustGet(t, db, fmt.Sprintf("k-%02d", i), 1)
	}
	for w := 0; w < 3; w++ {
		mustGet(t, db, "k-00", uint64(10+w*100+29))
	}
}
