package core

import (
	"bytes"
	"fmt"
	"testing"

	"directload/internal/aof"
)

func TestAutoCheckpoint(t *testing.T) {
	fs := testFS(t, 512)
	opts := testOptions()
	opts.CheckpointEveryBytes = 256 << 10
	db, err := Open(fs, opts)
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte{1}, 8<<10)
	for i := 0; i < 100; i++ { // ~800 KB: should cross the threshold 3x
		mustPut(t, db, fmt.Sprintf("k-%03d", i), 1, string(val), false)
	}
	st := db.Stats()
	if st.Checkpoints < 2 {
		t.Fatalf("Checkpoints = %d, want >= 2 for 800KB at a 256KB cadence", st.Checkpoints)
	}
	db.Close()
	db2 := reopen(t, fs)
	defer db2.Close()
	for i := 0; i < 100; i += 9 {
		if got := mustGet(t, db2, fmt.Sprintf("k-%03d", i), 1); !bytes.Equal([]byte(got), val) {
			t.Fatalf("k-%03d wrong after auto-checkpointed recovery", i)
		}
	}
}

func TestAutoCheckpointDisabledByDefault(t *testing.T) {
	db := openTestDB(t, 256)
	defer db.Close()
	val := bytes.Repeat([]byte{2}, 8<<10)
	for i := 0; i < 50; i++ {
		mustPut(t, db, fmt.Sprintf("k-%02d", i), 1, string(val), false)
	}
	if got := db.Stats().Checkpoints; got != 0 {
		t.Fatalf("Checkpoints = %d, want 0 with the policy disabled", got)
	}
}

// TestCheckpointBoundsRecoveryScan verifies the point of checkpointing:
// recovery reads far less flash when a fresh checkpoint exists, because
// files sealed before it are skipped entirely.
func TestCheckpointBoundsRecoveryScan(t *testing.T) {
	load := func(withCkpt bool) int64 {
		fs := testFS(t, 1024)
		db, err := Open(fs, testOptions())
		if err != nil {
			t.Fatal(err)
		}
		val := bytes.Repeat([]byte{3}, 10<<10)
		for i := 0; i < 400; i++ { // ~4 MB over ~4 sealed AOFs
			mustPut(t, db, fmt.Sprintf("k-%03d", i), 1, string(val), false)
		}
		if withCkpt {
			if _, err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		// A little post-checkpoint traffic so replay has work either way.
		for i := 0; i < 10; i++ {
			mustPut(t, db, fmt.Sprintf("tail-%02d", i), 2, string(val), false)
		}
		db.Close()

		before := fs.Device().Stats().SysReadBytes
		db2 := reopen(t, fs)
		db2.Close()
		return fs.Device().Stats().SysReadBytes - before
	}
	full := load(false)
	bounded := load(true)
	if bounded >= full/2 {
		t.Fatalf("recovery scan with checkpoint read %d bytes vs %d without; want < half", bounded, full)
	}
}

func TestCheckpointAfterGCRecovery(t *testing.T) {
	// Auto-checkpoint interleaved with GC and version churn must still
	// recover exactly.
	fs := testFS(t, 2048)
	opts := Options{
		AOF:                  aof.Config{FileSize: 1 << 20, GCThreshold: 0.25},
		CheckpointEveryBytes: 512 << 10,
		Seed:                 1,
	}
	db, err := Open(fs, opts)
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte{4}, 10<<10)
	for v := uint64(1); v <= 6; v++ {
		for i := 0; i < 60; i++ {
			mustPut(t, db, fmt.Sprintf("k-%02d", i), v, string(val), false)
		}
		db.RetainVersions(3)
	}
	if db.Stats().Checkpoints == 0 || db.Stats().Store.GCRuns == 0 {
		t.Fatalf("precondition: checkpoints=%d gc=%d", db.Stats().Checkpoints, db.Stats().Store.GCRuns)
	}
	keys := db.Stats().Keys
	db.Close()

	db2, err := Open(fs, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.Stats().Keys; got != keys {
		t.Fatalf("Keys after recovery = %d, want %d", got, keys)
	}
	for i := 0; i < 60; i += 7 {
		if got := mustGet(t, db2, fmt.Sprintf("k-%02d", i), 6); !bytes.Equal([]byte(got), val) {
			t.Fatalf("k-%02d/6 wrong", i)
		}
	}
	if vs := db2.Versions(); len(vs) != 3 || vs[0] != 4 {
		t.Fatalf("Versions = %v, want [4 5 6]", vs)
	}
}
