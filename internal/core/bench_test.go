package core

import (
	"fmt"
	"testing"

	"directload/internal/metrics"
)

func benchDB(b *testing.B) *DB {
	b.Helper()
	db, err := Open(testFS(b, 8192), testOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db
}

func BenchmarkPut20KB(b *testing.B) {
	db := benchDB(b)
	val := make([]byte, 20<<10)
	b.SetBytes(int64(len(val)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := []byte(fmt.Sprintf("key-%08d", i))
		if _, err := db.Put(key, 1, val, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet20KB(b *testing.B) {
	db := benchDB(b)
	val := make([]byte, 20<<10)
	const keys = 1024
	for i := 0; i < keys; i++ {
		if _, err := db.Put([]byte(fmt.Sprintf("key-%08d", i)), 1, val, false); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(val)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := []byte(fmt.Sprintf("key-%08d", i%keys))
		if _, _, err := db.Get(key, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetDedup(b *testing.B) {
	// A deduplicated GET costs one extra skip-list hop, no extra I/O.
	db := benchDB(b)
	val := make([]byte, 20<<10)
	const keys = 1024
	for i := 0; i < keys; i++ {
		key := []byte(fmt.Sprintf("key-%08d", i))
		db.Put(key, 1, val, false)
		db.Put(key, 2, nil, true)
	}
	b.SetBytes(int64(len(val)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := []byte(fmt.Sprintf("key-%08d", i%keys))
		if _, _, err := db.Get(key, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDel(b *testing.B) {
	db := benchDB(b)
	for i := 0; i < b.N; i++ {
		if _, err := db.Put([]byte(fmt.Sprintf("key-%08d", i)), 1, []byte("v"), false); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Del([]byte(fmt.Sprintf("key-%08d", i)), 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecovery(b *testing.B) {
	fs := testFS(b, 8192)
	db, err := Open(fs, testOptions())
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 10<<10)
	for i := 0; i < 2000; i++ {
		db.Put([]byte(fmt.Sprintf("key-%06d", i)), 1, val, false)
	}
	db.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := Open(fs, testOptions())
		if err != nil {
			b.Fatal(err)
		}
		db.Close()
	}
}

// BenchmarkPut20KBInstrumented is the registry-attached counterpart of
// BenchmarkPut20KB: comparing the two shows the observation overhead,
// and comparing allocs/op verifies the nil-registry path stays free.
func BenchmarkPut20KBInstrumented(b *testing.B) {
	opts := testOptions()
	opts.Metrics = metrics.NewRegistry()
	db, err := Open(testFS(b, 8192), opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	val := make([]byte, 20<<10)
	b.SetBytes(int64(len(val)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := []byte(fmt.Sprintf("key-%08d", i))
		if _, err := db.Put(key, 1, val, false); err != nil {
			b.Fatal(err)
		}
	}
}
