package directload_test

// Godoc examples for the public API. Each is deterministic so it runs as
// part of the test suite.

import (
	"fmt"

	"directload"
)

// The storage engine: versioned writes, deduplicated entries, traceback.
func ExampleOpenStore() {
	db, err := directload.OpenStore(64<<20, directload.DefaultStoreOptions())
	if err != nil {
		panic(err)
	}
	defer db.Close()

	db.Put([]byte("url/page"), 1, []byte("first crawl"), false)
	db.Put([]byte("url/page"), 2, nil, true) // value unchanged: deduplicated

	val, _, _ := db.Get([]byte("url/page"), 2)
	fmt.Println(string(val))
	// Output: first crawl
}

// Bifrost deduplication: unchanged values are stripped from the stream.
func ExampleNewDeduper() {
	d := directload.NewDeduper()
	d.Process([]byte("k1"), []byte("stable"))
	d.Process([]byte("k2"), []byte("volatile-v1"))
	d.AdvanceVersion()

	fmt.Println(d.Process([]byte("k1"), []byte("stable")))
	fmt.Println(d.Process([]byte("k2"), []byte("volatile-v2")))
	// Output:
	// true
	// false
}

// Crash recovery: reopen over the same flash and the data is back.
func ExampleOpenStoreOn() {
	flash, _ := directload.NewFlash(64 << 20)
	db, _ := directload.OpenStoreOn(flash, directload.DefaultStoreOptions())
	db.Put([]byte("k"), 7, []byte("durable"), false)
	db.Close() // "crash"

	db2, _ := directload.OpenStoreOn(flash, directload.DefaultStoreOptions())
	defer db2.Close()
	val, _, _ := db2.Get([]byte("k"), 7)
	fmt.Println(string(val))
	// Output: durable
}

// Range scans over the newest live versions.
func ExampleStore() {
	db, _ := directload.OpenStore(64<<20, directload.DefaultStoreOptions())
	defer db.Close()
	db.Put([]byte("a"), 1, []byte("x"), false)
	db.Put([]byte("b"), 1, []byte("x"), false)
	db.Put([]byte("b"), 2, []byte("y"), false)

	db.Range(nil, nil, func(key []byte, ver uint64) bool {
		fmt.Printf("%s@v%d\n", key, ver)
		return true
	})
	// Output:
	// a@v1
	// b@v2
}
