// Benchmarks regenerating every figure of the paper's evaluation section
// (there are no numbered tables; Figs. 5-10 plus the §5 RUM analysis are
// the complete set). Each benchmark drives the same runner as
// cmd/figures and reports the paper's metrics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints the reproduced numbers next to the timing. EXPERIMENTS.md maps
// each metric back to the paper's claims.
package directload_test

import (
	"testing"

	"directload/internal/experiments"
)

// BenchmarkFig5WriteAmplification reproduces Fig. 5: User-Write vs
// Sys-Write vs Sys-Read throughput for LevelDB and QinDB under the
// summary-index churn workload. The paper reports 20-25x write
// amplification for LevelDB and ~2.1x for QinDB, with ~3x higher user
// write throughput for QinDB.
func BenchmarkFig5WriteAmplification(b *testing.B) {
	for _, kind := range []experiments.EngineKind{experiments.LevelDB, experiments.QinDB} {
		b.Run(kind.String(), func(b *testing.B) {
			var last experiments.Fig5Result
			for i := 0; i < b.N; i++ {
				cfg := experiments.DefaultFig5Config()
				cfg.Seed = int64(i + 1)
				r, err := experiments.RunFig5(kind, cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(last.WriteAmp, "write-amp")
			b.ReportMetric(last.UserMBps, "userMB/s")
			b.ReportMetric(last.SysWriteMBps, "sysWriteMB/s")
			b.ReportMetric(last.SysReadMBps, "sysReadMB/s")
		})
	}
}

// BenchmarkFig6ThroughputDynamics reproduces Fig. 6: the stability of the
// user-write rate (paper: stddev 0.6616 MB/s for LevelDB vs 0.0501 MB/s
// for QinDB; with differing means, the coefficient of variation is the
// comparable statistic).
func BenchmarkFig6ThroughputDynamics(b *testing.B) {
	for _, kind := range []experiments.EngineKind{experiments.LevelDB, experiments.QinDB} {
		b.Run(kind.String(), func(b *testing.B) {
			var last experiments.Fig5Result
			for i := 0; i < b.N; i++ {
				cfg := experiments.DefaultFig5Config()
				cfg.Seed = int64(i + 1)
				r, err := experiments.RunFig5(kind, cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(last.UserStdDev, "user-stddev-MB/s")
			b.ReportMetric(last.UserCV, "user-cv")
		})
	}
}

// BenchmarkFig7StorageOccupation reproduces Fig. 7: flash space used
// under the same run (paper: QinDB ~80 GB vs LevelDB ~40 GB — the price
// of lazy GC).
func BenchmarkFig7StorageOccupation(b *testing.B) {
	for _, kind := range []experiments.EngineKind{experiments.LevelDB, experiments.QinDB} {
		b.Run(kind.String(), func(b *testing.B) {
			var last experiments.Fig5Result
			for i := 0; i < b.N; i++ {
				cfg := experiments.DefaultFig5Config()
				cfg.Seed = int64(i + 1)
				r, err := experiments.RunFig5(kind, cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(last.FinalDiskGB*1024, "disk-MB")
			_, _, _, peak := last.Storage.YStats()
			b.ReportMetric(peak*1024, "peak-disk-MB")
		})
	}
}

// BenchmarkFig8ReadLatency reproduces Fig. 8: average / p99 / p99.9 read
// latency with and without a concurrent update stream (paper 8a: QinDB
// 1803/3558/6574 us vs LevelDB 1846/3909/15081 us; 8b: QinDB
// 2104/4397/13663 us vs LevelDB 2668/12789/26458 us).
func BenchmarkFig8ReadLatency(b *testing.B) {
	for _, withUpdates := range []bool{false, true} {
		name := "NoUpdates"
		if withUpdates {
			name = "WithUpdates"
		}
		for _, kind := range []experiments.EngineKind{experiments.LevelDB, experiments.QinDB} {
			b.Run(name+"/"+kind.String(), func(b *testing.B) {
				var last experiments.Fig8Result
				for i := 0; i < b.N; i++ {
					cfg := experiments.DefaultFig8Config()
					cfg.Seed = int64(i + 1)
					cfg.WithUpdates = withUpdates
					r, err := experiments.RunFig8(kind, cfg)
					if err != nil {
						b.Fatal(err)
					}
					last = r
				}
				b.ReportMetric(last.Latency.Mean, "mean-us")
				b.ReportMetric(last.Latency.P99, "p99-us")
				b.ReportMetric(last.Latency.P999, "p99.9-us")
			})
		}
	}
}

// BenchmarkFig9DedupUpdateTime reproduces Fig. 9: the month-long series
// of dedup ratio vs update time (paper: 23% dedup -> 130 min; ~80% ->
// ~30 min; anti-correlated).
func BenchmarkFig9DedupUpdateTime(b *testing.B) {
	var days []experiments.DayResult
	var sum experiments.MonthSummary
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultMonthConfig()
		cfg.Seed = int64(i + 1)
		var err error
		days, sum, err = experiments.RunMonth(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sum.MeanDedup, "mean-dedup-ratio")
	b.ReportMetric(sum.MeanUpdateMin, "mean-update-min")
	// Spread between the cleanest high-dedup and low-dedup days.
	var hi, lo float64
	for _, d := range days {
		if d.Repairs > 0 || d.Day == days[0].Day {
			continue
		}
		if d.DedupRatio > 0.6 && (hi == 0 || d.UpdateMinutes < hi) {
			hi = d.UpdateMinutes
		}
		if d.DedupRatio < 0.5 && d.UpdateMinutes > lo {
			lo = d.UpdateMinutes
		}
	}
	b.ReportMetric(hi, "high-dedup-update-min")
	b.ReportMetric(lo, "low-dedup-update-min")
}

// BenchmarkFig10Throughput reproduces Fig. 10a: updating throughput
// (10^3 keys/s) with and without DirectLoad (paper: up to 5x better).
func BenchmarkFig10Throughput(b *testing.B) {
	var with, without experiments.MonthSummary
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultMonthConfig()
		cfg.Seed = int64(i + 1)
		var err error
		with, without, _, _, err = experiments.MonthPair(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(with.MeanKps, "directload-kps")
	b.ReportMetric(without.MeanKps, "baseline-kps")
	if without.MeanKps > 0 {
		b.ReportMetric(with.MeanKps/without.MeanKps, "speedup")
	}
}

// BenchmarkFig10MissRatio reproduces Fig. 10b: the miss ratio (fraction
// of slices later than the deadline) under failure injection (paper:
// 0.24% against a 0.6% SLO).
func BenchmarkFig10MissRatio(b *testing.B) {
	var sum experiments.MonthSummary
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultMonthConfig()
		cfg.Seed = int64(i + 1)
		var err error
		_, sum, err = experiments.RunMonth(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sum.MissRatio*100, "miss-pct")
	b.ReportMetric(0.6, "slo-pct")
}

// BenchmarkHeadlineBandwidthSaving reproduces the abstract's "63%
// updating bandwidth has been saved due to the deduplication".
func BenchmarkHeadlineBandwidthSaving(b *testing.B) {
	var sum experiments.MonthSummary
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultMonthConfig()
		cfg.Seed = int64(i + 1)
		var err error
		_, sum, err = experiments.RunMonth(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	saving := 1 - float64(sum.WireBytes)/float64(sum.PayloadBytes)
	b.ReportMetric(saving*100, "bandwidth-saved-pct")
}

// BenchmarkHeadlineWriteThroughput reproduces the abstract's "the write
// throughput to SSDs is increased by 3x": equal user bytes over the
// simulated device, compared by elapsed device time.
func BenchmarkHeadlineWriteThroughput(b *testing.B) {
	var q, l experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFig5Config()
		cfg.Seed = int64(i + 1)
		var err error
		q, l, err = experiments.Fig5Pair(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(l.Elapsed)/float64(q.Elapsed), "throughput-speedup")
}

// BenchmarkHeadlineUpdateCycle reproduces the abstract's "index updating
// cycle ... from 15 days to 3 days": the ratio of total effective update
// time over the month, baseline vs DirectLoad.
func BenchmarkHeadlineUpdateCycle(b *testing.B) {
	var with, without experiments.MonthSummary
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultMonthConfig()
		cfg.Seed = int64(i + 1)
		var err error
		with, without, _, _, err = experiments.MonthPair(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if with.MeanUpdateMin > 0 {
		b.ReportMetric(without.MeanUpdateMin/with.MeanUpdateMin, "cycle-compression")
	}
}

// BenchmarkRUMAblation reproduces the §5 RUM analysis: the lazy-GC
// threshold sweep trading storage space (M) against update cost (U) at
// constant read cost (R).
func BenchmarkRUMAblation(b *testing.B) {
	var pts []experiments.RUMPoint
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFig5Config()
		cfg.Seed = int64(i + 1)
		var err error
		pts, err = experiments.RunRUMAblation(cfg, []float64{0.10, 0.25, 0.50, 0.75})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.ReportMetric(p.WriteAmp, "wa@"+trimFloat(p.GCThreshold))
		b.ReportMetric(p.DiskGB*1024, "diskMB@"+trimFloat(p.GCThreshold))
	}
}

// BenchmarkAblationFlashInterface quantifies native vs FTL flash for
// both engines (paper §2.3's block-aligned files).
func BenchmarkAblationFlashInterface(b *testing.B) {
	var rs []experiments.InterfaceResult
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFig5Config()
		cfg.Seed = int64(i + 1)
		var err error
		rs, err = experiments.RunInterfaceAblation(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rs {
		b.ReportMetric(r.WriteAmp, "wa-"+r.Engine+"-"+r.Interface)
	}
}

// BenchmarkGrayConsistency reproduces the §3 gray-release measurement:
// real searches answered at all six DCs while one serves a newer index
// version; inconsistency scales with content churn and collapses to 0
// after activation (paper: <0.1% at production's hourly churn).
func BenchmarkGrayConsistency(b *testing.B) {
	var rs []experiments.ConsistencyResult
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultConsistencyConfig()
		cfg.Documents = 300
		cfg.Queries = 200
		cfg.Seed = int64(i + 1)
		var err error
		rs, err = experiments.ConsistencySweep(cfg, []float64{0.01, 0.30})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rs[0].RateDuring*100, "gray-pct@churn=0.01")
	b.ReportMetric(rs[1].RateDuring*100, "gray-pct@churn=0.30")
	b.ReportMetric(rs[0].RateAfter*100, "post-activation-pct")
}

// BenchmarkAblationTraceback shows that QinDB's bind-at-PUT dedup makes
// the read cost independent of the duplicate ratio.
func BenchmarkAblationTraceback(b *testing.B) {
	var pts []experiments.TracebackPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.RunTracebackAblation(150, 8192, 8, nil, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.ReportMetric(p.ReadMeanUs, "read-us@dup="+trimFloat(p.DupRatio))
	}
}

func trimFloat(f float64) string {
	switch f {
	case 0:
		return "0"
	case 0.1:
		return "0.10"
	case 0.25:
		return "0.25"
	case 0.3:
		return "0.30"
	case 0.5:
		return "0.50"
	case 0.6:
		return "0.60"
	case 0.75:
		return "0.75"
	case 0.9:
		return "0.90"
	}
	return "x"
}
