GO ?= go

.PHONY: build test race vet bench check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 100x ./...

# Full pre-merge gate: compile, vet, unit tests, then the race detector
# over the concurrency-heavy network and cluster packages.
check: build vet test
	$(GO) test -race ./internal/server/... ./internal/cluster/...

clean:
	$(GO) clean ./...
