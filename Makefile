GO ?= go
GIT_SHA := $(shell git rev-parse --short HEAD 2>/dev/null || echo unknown)

.PHONY: build test race vet lint lint-fixtures lint-sarif audit-ignores bench bench-out bench-json bench-compare fuzz-smoke check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Repo-specific analyzers (internal/analysis) run through the go
# command's vettool protocol, so package loading, export data, fact
# propagation and result caching all come from `go vet`. See
# DESIGN.md, "Static analysis" and "Interprocedural analysis".
# Suppress a finding with:
#   //lint:ignore <analyzer> reason
lint:
	$(GO) build -o bin/directload-vet ./cmd/directload-vet
	$(GO) vet -vettool=bin/directload-vet ./...

# The analyzers' own regression suite: every analyzer package runs its
# flagging and non-flagging fixtures under the analysistest harness,
# plus the facts engine's round-trip/staleness tests.
lint-fixtures:
	$(GO) test ./internal/analysis/... ./cmd/directload-vet/

# Same findings as `make lint`, also written to directload-vet.sarif
# for code-scanning upload.
lint-sarif:
	$(GO) build -o bin/directload-vet ./cmd/directload-vet
	bin/directload-vet -sarif=directload-vet.sarif ./...

# Every //lint:ignore in the tree, with its mandatory reason; fails if
# any directive lacks one.
audit-ignores:
	$(GO) build -o bin/directload-vet ./cmd/directload-vet
	bin/directload-vet -audit-ignores

bench:
	$(GO) test -run xxx -bench . -benchtime 100x ./...

# The benchmark suites bench-json and bench-compare both run: the
# remote publish and backend-attribution paths, the fleet quorum /
# hedged-read paths, the core engine, the AOF appender and the RESP
# front door. Output accumulates in .bench.out for whichever consumer
# asked for it. Every suite runs -count 3 and benchjson keeps each
# benchmark's fastest repeat; iteration counts are sized so every
# measurement window spans tens of milliseconds — together the two
# make the figures noise floors the regression gate can diff, rather
# than single samples one scheduler hiccup can ruin.
bench-out:
	$(GO) test -run xxx -bench 'BenchmarkRemotePublish' -benchmem -benchtime 20x -count 3 ./internal/server/ > .bench.out
	$(GO) test -run xxx -bench 'BenchmarkPut20KBBackend|BenchmarkPut20KBAttributed' -benchmem -benchtime 1000x -count 3 ./internal/server/ >> .bench.out
	$(GO) test -run xxx -bench 'BenchmarkFleetQuorumWrite' -benchmem -benchtime 20x -count 3 ./internal/fleet/ >> .bench.out
	$(GO) test -run xxx -bench 'BenchmarkFleetHedgedRead' -benchmem -benchtime 2000x -count 3 ./internal/fleet/ >> .bench.out
	$(GO) test -run xxx -bench 'BenchmarkPut20KB$$|BenchmarkGet20KB|BenchmarkGetDedup|BenchmarkPut20KBInstrumented' -benchmem -benchtime 1000x -count 3 ./internal/core/ >> .bench.out
	$(GO) test -run xxx -bench 'BenchmarkDel' -benchmem -benchtime 20000x -count 3 ./internal/core/ >> .bench.out
	$(GO) test -run xxx -bench 'BenchmarkRecovery' -benchmem -benchtime 20x -count 3 ./internal/core/ >> .bench.out
	$(GO) test -run xxx -bench 'BenchmarkAOFAppendAligned' -benchmem -benchtime 5000x -count 3 ./internal/aof/ >> .bench.out
	$(GO) test -run xxx -bench 'BenchmarkRESPPipelined' -benchmem -benchtime 20000x -count 3 ./internal/resp/ >> .bench.out
	$(GO) test -run xxx -bench 'BenchmarkSearchTermQuery|BenchmarkSearchAndQuery' -benchmem -benchtime 2000x -count 3 ./internal/search/ >> .bench.out
	$(GO) test -run xxx -bench 'BenchmarkSearchQueryDuringPublish' -benchmem -benchtime 200x -count 3 ./internal/search/ >> .bench.out

# Machine-readable benchmark report: the remote publish path plus the
# core engine benchmarks, rendered to BENCH_directload.json by
# cmd/benchjson (name -> ops/s, ns/op, B/op, allocs/op). Each run also
# appends one {git_sha, ts, results} line to BENCH_history.jsonl so
# successive commits accumulate a regression series.
bench-json: bench-out
	$(GO) run ./cmd/benchjson -history BENCH_history.jsonl -sha $(GIT_SHA) < .bench.out > BENCH_directload.json
	rm -f .bench.out
	@echo wrote BENCH_directload.json

# Perf-regression gate: re-run the benchmark suites and diff them
# against the committed BENCH_directload.json baseline. Fails when any
# benchmark's ns/op regressed > 15% or its allocs/op > 10%; exempt a
# known-noisy or intentionally changed benchmark with
# BENCH_ALLOW='Put20KB,Recovery'.
bench-compare: bench-out
	$(GO) run ./cmd/benchjson -compare BENCH_directload.json -allow '$(BENCH_ALLOW)' < .bench.out
	rm -f .bench.out

# Short fuzz pass over every wire-protocol and AOF decoder target. The
# go tool accepts one -fuzz pattern per invocation, hence one line per
# target.
fuzz-smoke:
	$(GO) test -run xxx -fuzz '^FuzzFrameV1$$' -fuzztime 10s ./internal/server/
	$(GO) test -run xxx -fuzz '^FuzzRequest$$' -fuzztime 10s ./internal/server/
	$(GO) test -run xxx -fuzz '^FuzzFrameV2$$' -fuzztime 10s ./internal/server/
	$(GO) test -run xxx -fuzz '^FuzzDecode$$' -fuzztime 10s ./internal/aof/
	$(GO) test -run xxx -fuzz '^FuzzRESPParse$$' -fuzztime 10s ./internal/resp/
	$(GO) test -run xxx -fuzz '^FuzzPostingsDecode$$' -fuzztime 10s ./internal/search/
	$(GO) test -run xxx -fuzz '^FuzzCIFFImport$$' -fuzztime 10s ./internal/search/

# Full pre-merge gate: compile, standard vet, the repo's own analyzer
# suite, unit tests, then the race detector over every package.
# benchjson is built (not run) as a smoke test so bench-json can't rot
# unnoticed.
check: build vet lint test
	$(GO) test -race ./...
	$(GO) build -o /dev/null ./cmd/benchjson

clean:
	$(GO) clean ./...
	rm -rf bin
