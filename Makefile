GO ?= go
GIT_SHA := $(shell git rev-parse --short HEAD 2>/dev/null || echo unknown)

.PHONY: build test race vet lint bench bench-json fuzz-smoke check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Repo-specific analyzers (internal/analysis) run through the go
# command's vettool protocol, so package loading, export data and
# result caching all come from `go vet`. See DESIGN.md, "Static
# analysis". Suppress a finding with:
#   //lint:ignore <analyzer> reason
lint:
	$(GO) build -o bin/directload-vet ./cmd/directload-vet
	$(GO) vet -vettool=bin/directload-vet ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 100x ./...

# Machine-readable benchmark report: the remote publish path plus the
# core engine benchmarks, rendered to BENCH_directload.json by
# cmd/benchjson (name -> ops/s, ns/op, B/op, allocs/op). Each run also
# appends one {git_sha, ts, results} line to BENCH_history.jsonl so
# successive commits accumulate a regression series.
bench-json:
	$(GO) test -run xxx -bench 'BenchmarkRemotePublish' -benchmem -benchtime 20x ./internal/server/ > .bench.out
	$(GO) test -run xxx -bench 'BenchmarkFleet' -benchmem -benchtime 20x ./internal/fleet/ >> .bench.out
	$(GO) test -run xxx -bench 'BenchmarkPut20KB$$|BenchmarkGet20KB|BenchmarkGetDedup|BenchmarkDel|BenchmarkRecovery|BenchmarkPut20KBInstrumented' -benchmem -benchtime 50x ./internal/core/ >> .bench.out
	$(GO) test -run xxx -bench 'BenchmarkAOFAppendAligned' -benchmem -benchtime 200x ./internal/aof/ >> .bench.out
	$(GO) test -run xxx -bench 'BenchmarkRESPPipelined' -benchmem -benchtime 20000x ./internal/resp/ >> .bench.out
	$(GO) run ./cmd/benchjson -history BENCH_history.jsonl -sha $(GIT_SHA) < .bench.out > BENCH_directload.json
	rm -f .bench.out
	@echo wrote BENCH_directload.json

# Short fuzz pass over every wire-protocol and AOF decoder target. The
# go tool accepts one -fuzz pattern per invocation, hence one line per
# target.
fuzz-smoke:
	$(GO) test -run xxx -fuzz '^FuzzFrameV1$$' -fuzztime 10s ./internal/server/
	$(GO) test -run xxx -fuzz '^FuzzRequest$$' -fuzztime 10s ./internal/server/
	$(GO) test -run xxx -fuzz '^FuzzFrameV2$$' -fuzztime 10s ./internal/server/
	$(GO) test -run xxx -fuzz '^FuzzDecode$$' -fuzztime 10s ./internal/aof/
	$(GO) test -run xxx -fuzz '^FuzzRESPParse$$' -fuzztime 10s ./internal/resp/

# Full pre-merge gate: compile, standard vet, the repo's own analyzer
# suite, unit tests, then the race detector over every package.
# benchjson is built (not run) as a smoke test so bench-json can't rot
# unnoticed.
check: build vet lint test
	$(GO) test -race ./...
	$(GO) build -o /dev/null ./cmd/benchjson

clean:
	$(GO) clean ./...
	rm -rf bin
