GO ?= go

.PHONY: build test race vet bench bench-json check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 100x ./...

# Machine-readable benchmark report: the remote publish path plus the
# core engine benchmarks, rendered to BENCH_directload.json by
# cmd/benchjson (name -> ops/s, ns/op, B/op, allocs/op).
bench-json:
	$(GO) test -run xxx -bench 'BenchmarkRemotePublish' -benchmem -benchtime 20x ./internal/server/ > .bench.out
	$(GO) test -run xxx -bench 'BenchmarkFleet' -benchmem -benchtime 20x ./internal/fleet/ >> .bench.out
	$(GO) test -run xxx -bench 'BenchmarkPut20KB$$|BenchmarkGet20KB|BenchmarkGetDedup|BenchmarkDel|BenchmarkRecovery|BenchmarkPut20KBInstrumented' -benchmem -benchtime 50x ./internal/core/ >> .bench.out
	$(GO) run ./cmd/benchjson < .bench.out > BENCH_directload.json
	rm -f .bench.out
	@echo wrote BENCH_directload.json

# Full pre-merge gate: compile, vet, unit tests, then the race detector
# over the concurrency-heavy network, cluster and fleet packages.
# benchjson is built (not run) as a smoke test so bench-json can't rot
# unnoticed.
check: build vet test
	$(GO) test -race ./internal/server/... ./internal/cluster/... ./internal/fleet/...
	$(GO) build -o /dev/null ./cmd/benchjson

clean:
	$(GO) clean ./...
